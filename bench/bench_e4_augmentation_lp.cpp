// E4 — Empirical augmentation requirement vs. the LP (migrating) adversary.
//
// Filter random instances for LP feasibility (decided exactly by the
// combinatorial oracle) and measure alpha* of the first-fit test.
// Theorems I.3 / I.4 guarantee alpha*(EDF) <= 2.98 and alpha*(RMS) <= 3.34.
// Because the LP adversary may migrate, the gap between observed alpha* and
// the partitioned-adversary numbers of E3 is the empirical "price" the LP
// relaxation charges the analysis.
#include "bench_common.h"
#include "experiments/augmentation.h"
#include "gen/platform_gen.h"
#include "partition/analysis_constants.h"
#include "util/stats.h"

namespace hetsched {
namespace {

void run_case(Table& table, AdmissionKind kind, double bound, std::size_t n,
              std::size_t m, double ratio) {
  AugmentationStudySpec spec;
  spec.platform = geometric_platform(m, ratio);
  spec.taskset.n = n;
  spec.taskset.max_task_utilization = spec.platform.max_speed();
  spec.taskset.periods = PeriodSpec::log_uniform(10, 1000);
  spec.norm_lo = 0.6;
  spec.norm_hi = 1.0;
  spec.trials = 400;
  spec.seed = 0xE4;
  spec.kind = kind;

  const AugmentationStudyResult res = augmentation_vs_lp(spec);
  const Summary& s = res.summary;
  table.add_row(
      {to_string(kind), Table::fmt_int(static_cast<std::int64_t>(n)),
       Table::fmt_int(static_cast<std::int64_t>(m)), Table::fmt(ratio, 1),
       Table::fmt(bound, 2),
       Table::fmt_int(static_cast<std::int64_t>(res.adversary_feasible)),
       Table::fmt(s.mean, 3), Table::fmt(s.p50, 3), Table::fmt(s.p95, 3),
       Table::fmt(s.p99, 3), Table::fmt(s.max, 3),
       s.max <= bound + 1e-6 ? "yes" : "NO"});
}

}  // namespace
}  // namespace hetsched

int main() {
  using namespace hetsched;
  bench::print_header(
      "E4", "empirical augmentation alpha* vs the LP (migrating) adversary");
  bench::WallTimer timer;

  Table table({"test", "n", "m", "speed-ratio", "bound", "lp-feas", "mean",
               "p50", "p95", "p99", "max", "within-bound"});
  for (const AdmissionKind kind :
       {AdmissionKind::kEdf, AdmissionKind::kRmsLiuLayland}) {
    const double bound = kind == AdmissionKind::kEdf
                             ? EdfConstants::kAlphaLp
                             : RmsConstants::kAlphaLp;
    run_case(table, kind, bound, 16, 4, 1.5);
    run_case(table, kind, bound, 16, 4, 2.0);
    run_case(table, kind, bound, 48, 12, 1.3);
    run_case(table, kind, bound, 64, 16, 1.2);
  }

  bench::print_section("alpha* over LP-feasible instances");
  bench::emit(table, "e4_augmentation_lp");
  std::printf("\n[E4 done in %.1fs]\n", timer.seconds());
  return 0;
}
