// E7 — Ablation of the algorithm's ordering choices.
//
// The paper's proofs hinge on (a) tasks visited in non-increasing
// utilization and (b) machines visited slowest-first.  This experiment runs
// the full (task order x machine order x fit rule) grid at alpha = 1 and
// reports acceptance at three load levels, quantifying how much each design
// choice contributes.  Expected shape: dec-util beats inc-util/random by a
// wide margin at high load; inc-speed (the paper's choice) beats dec-speed
// because dec-speed burns fast-machine capacity on small tasks; best-fit
// edges out first-fit slightly but costs the analysis its structure.
#include "baselines/heuristics.h"
#include "bench_common.h"
#include "experiments/acceptance.h"
#include "gen/platform_gen.h"

namespace hetsched {
namespace {

void run_admission(AdmissionKind kind) {
  AcceptanceSweepSpec spec;
  spec.platform = geometric_platform(8, 1.5, 12.0);
  spec.tasks_per_set = 32;
  spec.max_task_utilization = spec.platform.max_speed();
  spec.periods = PeriodSpec::log_uniform(10, 1000);
  spec.normalized_utilizations = {0.60, 0.75, 0.90};
  spec.trials_per_point = 300;
  spec.seed = 0xE7;

  std::vector<Tester> testers;
  std::vector<HeuristicSpec> grid;
  for (const TaskOrder to :
       {TaskOrder::kDecreasingUtilization, TaskOrder::kIncreasingUtilization,
        TaskOrder::kRandom}) {
    for (const MachineOrder mo :
         {MachineOrder::kIncreasingSpeed, MachineOrder::kDecreasingSpeed}) {
      for (const FitRule fr :
           {FitRule::kFirstFit, FitRule::kBestFit, FitRule::kWorstFit}) {
        grid.push_back(HeuristicSpec{to, mo, fr});
      }
    }
  }
  for (const HeuristicSpec& h : grid) {
    testers.push_back(Tester::make(
        h.to_string(), [h, kind](const TaskSet& t, const Platform& p) {
          // Random task order draws from a per-instance RNG seeded by the
          // task set's content so the sweep stays deterministic.
          Rng order_rng(0x9E3779B97F4A7C15ULL ^ (t.size() * 2654435761u));
          return heuristic_partition(t, p, h, kind, 1.0, &order_rng).feasible;
        }));
  }

  // Transpose: one row per heuristic, one acceptance column per load.
  const AcceptanceCurve curve = run_acceptance_sweep(spec, testers);
  Table table({"heuristic", "U/S=0.60", "U/S=0.75", "U/S=0.90"});
  for (std::size_t k = 0; k < testers.size(); ++k) {
    table.add_row({curve.tester_names[k],
                   Table::fmt(curve.points[0].acceptance[k], 4),
                   Table::fmt(curve.points[1].acceptance[k], 4),
                   Table::fmt(curve.points[2].acceptance[k], 4)});
  }
  bench::print_section(std::string("admission = ") + to_string(kind) +
                       ", alpha = 1, n=32, m=8 geometric ratio 1.5");
  bench::emit(table, "e7_ordering_ablation",
              std::string("_") + to_string(kind));
}

}  // namespace
}  // namespace hetsched

int main() {
  using namespace hetsched;
  bench::print_header(
      "E7", "ablation: task order x machine order x fit rule at alpha = 1");
  bench::WallTimer timer;
  run_admission(AdmissionKind::kEdf);
  run_admission(AdmissionKind::kRmsLiuLayland);
  std::printf("\n[E7 done in %.1fs]\n", timer.seconds());
  return 0;
}
