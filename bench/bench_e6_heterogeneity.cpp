// E6 — Effect of platform heterogeneity at fixed aggregate speed.
//
// Eight machines, total speed held at 16, speed spread s_max/s_min swept
// from 1 (identical) to ~64 (one dominant core) for two shapes:
//   * geometric ladders, and
//   * big.LITTLE (4 little + 4 big cores).
// At each point we measure first-fit acceptance at a fixed normalized load,
// plus the LP-feasible fraction.  Expected shape: moderate heterogeneity is
// *good* for the raw test (fast cores absorb dense tasks), while extreme
// spread hurts — utilization locked in slow cores is hard to use — and the
// LP reference degrades much more slowly (migration hides fragmentation).
#include <cmath>

#include "bench_common.h"
#include "experiments/acceptance.h"
#include "gen/platform_gen.h"
#include "lp/feasibility_lp.h"
#include "partition/first_fit.h"

namespace hetsched {
namespace {

constexpr std::size_t kMachines = 8;
constexpr double kTotalSpeed = 16.0;

Platform geometric_with_spread(double spread) {
  // ratio^(m-1) == spread.
  const double ratio =
      std::pow(spread, 1.0 / static_cast<double>(kMachines - 1));
  return geometric_platform(kMachines, ratio, kTotalSpeed);
}

Platform biglittle_with_spread(double spread) {
  // 4 little at s, 4 big at s * spread, total = kTotalSpeed.
  const double little = kTotalSpeed / (4.0 + 4.0 * spread);
  return big_little_platform(4, 4, little, little * spread);
}

void run_shape(const char* shape, Platform (*make)(double), double norm_util,
               std::uint64_t seed) {
  Table table({"s_max/s_min", "ff-edf@1", "ff-rms@1", "ff-edf@2", "lp"});
  for (const double spread : {1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0}) {
    AcceptanceSweepSpec spec;
    spec.platform = make(spread);
    spec.tasks_per_set = 12;
    spec.max_task_utilization = spec.platform.max_speed();
    spec.periods = PeriodSpec::log_uniform(10, 1000);
    spec.normalized_utilizations = {norm_util};
    spec.trials_per_point = 400;
    spec.seed = seed;

    const std::vector<Tester> testers{
        Tester::make_first_fit("ff-edf@1", AdmissionKind::kEdf, 1.0),
        Tester::make_first_fit("ff-rms@1", AdmissionKind::kRmsLiuLayland, 1.0),
        Tester::make_first_fit("ff-edf@2", AdmissionKind::kEdf, 2.0),
        Tester::make("lp", [](const TaskSet& t, const Platform& p) {
          return lp_feasible_oracle(t, p);
        }),
    };
    const AcceptanceCurve curve = run_acceptance_sweep(spec, testers);
    const AcceptancePoint& pt = curve.points[0];
    table.add_row({Table::fmt(spread, 0), Table::fmt(pt.acceptance[0], 4),
                   Table::fmt(pt.acceptance[1], 4),
                   Table::fmt(pt.acceptance[2], 4),
                   Table::fmt(pt.acceptance[3], 4)});
  }
  bench::print_section(std::string(shape) + " platforms, m=8, total speed " +
                       Table::fmt(kTotalSpeed, 0) + ", U/S = " +
                       Table::fmt(norm_util, 2) + ", n=12");
  bench::emit(table, "e6_heterogeneity",
              std::string("_") + shape + "_u" + Table::fmt(norm_util, 2));
}

}  // namespace
}  // namespace hetsched

int main() {
  using namespace hetsched;
  bench::print_header("E6",
                      "acceptance vs speed spread at fixed aggregate speed");
  bench::WallTimer timer;
  run_shape("geometric", &geometric_with_spread, 0.75, 0xE6);
  run_shape("geometric", &geometric_with_spread, 0.90, 0xE6 + 1);
  run_shape("biglittle", &biglittle_with_spread, 0.75, 0xE6 + 2);
  run_shape("biglittle", &biglittle_with_spread, 0.90, 0xE6 + 3);
  std::printf("\n[E6 done in %.1fs]\n", timer.seconds());
  return 0;
}
