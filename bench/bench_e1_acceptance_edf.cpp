// E1 — Acceptance ratio vs. normalized utilization, first-fit EDF.
//
// For each normalized load point U/S we generate UUniFast-Discard task sets
// on an 8-machine geometric platform and measure the acceptance fraction of
// the first-fit EDF test at the alphas the theory distinguishes:
//   alpha = 1.00        raw test (no augmentation certificate)
//   alpha = 2.00        Theorem I.1 certificate vs. a partitioned adversary
//   alpha = 2.98        Theorem I.3 certificate vs. the LP adversary
//   alpha = 3.00        Andersson–Tovar [2] certificate
// with the exact LP-feasible fraction as the upper reference curve.
//
// Expected shape: the LP curve upper-bounds everything; alpha = 2.98 and
// alpha = 3.00 sit essentially on top of the LP curve at these loads (the
// certificates rarely bind on random instances); alpha = 1 falls off well
// before U/S = 1.  The per-n tables show the effect sharpening with more,
// smaller tasks.
#include <cstddef>

#include "bench_common.h"
#include "experiments/acceptance.h"
#include "gen/platform_gen.h"
#include "lp/feasibility_lp.h"
#include "partition/analysis_constants.h"
#include "partition/first_fit.h"

namespace hetsched {
namespace {

void run_for_n(std::size_t n) {
  AcceptanceSweepSpec spec;
  // Total speed normalized to 12 so tasks are chunky relative to machines
  // (n/m between 1.5 and 6): the regime where greedy packing actually
  // fragments.  With many tiny tasks every tester accepts until U/S = 1.
  spec.platform = geometric_platform(8, 1.5, 12.0);
  spec.tasks_per_set = n;
  spec.max_task_utilization = spec.platform.max_speed();
  spec.periods = PeriodSpec::log_uniform(10, 1000);
  for (double x = 0.60; x <= 1.001; x += 0.025) {
    spec.normalized_utilizations.push_back(x);
  }
  spec.trials_per_point = 400;
  spec.seed = 0xE1;

  // First-fit testers go through the sweep's segment-tree fast path; only
  // the LP oracle runs as a plain predicate.
  const std::vector<Tester> testers{
      Tester::make_first_fit("ff-edf@1.00", AdmissionKind::kEdf, 1.0),
      Tester::make_first_fit("ff-edf@2.00", AdmissionKind::kEdf,
                             EdfConstants::kAlphaPartitioned),
      Tester::make_first_fit("ff-edf@2.98", AdmissionKind::kEdf,
                             EdfConstants::kAlphaLp),
      Tester::make_first_fit("ff-edf@3.00", AdmissionKind::kEdf, 3.0),
      Tester::make("lp-feasible", [](const TaskSet& t, const Platform& p) {
        return lp_feasible_oracle(t, p);
      }),
  };

  bench::print_section("n = " + std::to_string(n) +
                       " tasks, m = 8 machines (geometric ratio 1.5), " +
                       std::to_string(spec.trials_per_point) +
                       " task sets per point");
  const AcceptanceCurve curve = run_acceptance_sweep(spec, testers);
  bench::emit(curve.to_table(), "e1_acceptance_edf",
              "_n" + std::to_string(n));
  const std::vector<double> ws = curve.weighted_schedulability();
  std::printf("weighted schedulability:");
  for (std::size_t k = 0; k < ws.size(); ++k) {
    std::printf(" %s=%.4f", curve.tester_names[k].c_str(), ws[k]);
  }
  std::printf("\n");
}

}  // namespace
}  // namespace hetsched

int main() {
  hetsched::bench::print_header(
      "E1", "acceptance ratio vs normalized utilization, first-fit EDF");
  hetsched::bench::WallTimer timer;
  for (const std::size_t n : {12u, 24u, 48u}) {
    hetsched::run_for_n(n);
  }
  std::printf("\n[E1 done in %.1fs]\n", timer.seconds());
  return 0;
}
