// E11 — Constrained-deadline extension (beyond the paper).
//
// The paper's model is implicit-deadline; this experiment runs the same
// first-fit shape on constrained-deadline task sets with DBF-based
// admission and measures
//   * acceptance of exact-QPA vs. linear-approximate admission as the
//     deadline tightness d/p shrinks, and
//   * the cost of tight deadlines: acceptance at fixed utilization as the
//     deadline fraction sweeps from 1.0 (implicit) down to 0.3.
// Expected shape: both testers degrade as deadlines tighten (dbf grows at
// fixed utilization), the approximate test tracking the exact one from
// below; at d/p = 1 the numbers reproduce the implicit-deadline EDF curve.
#include <algorithm>
#include <cmath>

#include "bench_common.h"
#include "dbf/demand_bound.h"
#include "gen/platform_gen.h"
#include "gen/taskset_gen.h"
#include "util/rng.h"

namespace hetsched {
namespace {

std::vector<ConstrainedTask> constrain(const TaskSet& tasks, double frac,
                                       Rng& rng) {
  std::vector<ConstrainedTask> out;
  out.reserve(tasks.size());
  for (const Task& t : tasks) {
    // Deadline uniformly in [frac * p, p], at least exec (else trivially
    // infeasible on a unit machine regardless of partitioning).
    const auto lo = static_cast<std::int64_t>(
        std::llround(frac * static_cast<double>(t.period)));
    const std::int64_t d =
        std::clamp<std::int64_t>(rng.uniform_int(lo, t.period), 1, t.period);
    out.push_back(ConstrainedTask{t.exec, d, t.period});
  }
  return out;
}

void run_tightness(Table& table, double norm_util, std::size_t trials) {
  const Platform platform = geometric_platform(4, 1.5, 6.0);
  for (const double frac : {1.0, 0.9, 0.7, 0.5, 0.3}) {
    std::size_t qpa_ok = 0, approx_ok = 0, approx3_ok = 0;
    Rng rng(0x11E);
    for (std::size_t trial = 0; trial < trials; ++trial) {
      TasksetSpec spec;
      spec.n = 12;
      spec.max_task_utilization = platform.max_speed();
      spec.total_utilization =
          std::min(norm_util * platform.total_speed(),
                   0.35 * 12 * spec.max_task_utilization);
      spec.periods = PeriodSpec::uniform(20, 400);
      const TaskSet base = generate_taskset(rng, spec);
      const auto tasks = constrain(base, frac, rng);

      qpa_ok += first_fit_partition_constrained(
                    tasks, platform, DbfAdmission::kExactQpa, 1.0)
                    .feasible;
      approx3_ok += first_fit_partition_constrained(
                        tasks, platform, DbfAdmission::kApproxThreePoint, 1.0)
                        .feasible;
      approx_ok += first_fit_partition_constrained(
                       tasks, platform, DbfAdmission::kApproxLinear, 1.0)
                       .feasible;
    }
    table.add_row({Table::fmt(norm_util, 2), Table::fmt(frac, 1),
                   Table::fmt(static_cast<double>(qpa_ok) /
                                  static_cast<double>(trials),
                              4),
                   Table::fmt(static_cast<double>(approx3_ok) /
                                  static_cast<double>(trials),
                              4),
                   Table::fmt(static_cast<double>(approx_ok) /
                                  static_cast<double>(trials),
                              4)});
  }
}

}  // namespace
}  // namespace hetsched

int main() {
  using namespace hetsched;
  bench::print_header(
      "E11", "constrained-deadline extension: DBF admission vs tightness");
  bench::WallTimer timer;
  Table table({"U/S", "d/p floor", "ff-dbf-qpa", "ff-dbf-approx3",
               "ff-dbf-approx1"});
  run_tightness(table, 0.60, 200);
  run_tightness(table, 0.80, 200);
  bench::print_section("n=12 tasks, m=4 geometric (total speed 6)");
  bench::emit(table, "e11_constrained");
  std::printf("\n[E11 done in %.1fs]\n", timer.seconds());
  return 0;
}
