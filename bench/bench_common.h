// Shared scaffolding for the experiment binaries (benches E1..E9).
//
// Every experiment prints a header identifying itself, one or more
// fixed-width tables (the artifact a paper would typeset), and mirrors each
// table into a CSV file next to the binary so results can be re-plotted.
#pragma once

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "util/stats.h"
#include "util/table.h"

namespace hetsched::bench {

inline void print_header(const std::string& id, const std::string& title) {
  std::printf("================================================================\n");
  std::printf("%s — %s\n", id.c_str(), title.c_str());
  std::printf("================================================================\n");
}

inline void print_section(const std::string& caption) {
  std::printf("\n--- %s ---\n", caption.c_str());
}

// Prints the table and writes "<id><suffix>.csv" into the working directory.
inline void emit(const Table& table, const std::string& id,
                 const std::string& suffix = "") {
  std::printf("%s", table.render().c_str());
  const std::string path = id + suffix + ".csv";
  if (table.write_csv(path)) {
    std::printf("[csv: %s]\n", path.c_str());
  }
}

// Times fn() `reps` times (after one untimed warm-up rep) and reduces the
// per-rep wall times through stats::summarize, so every bench reports the
// same percentile definitions (linear interpolation between order
// statistics) as the stats exposition in src/obs.
template <typename Fn>
Summary time_summary_ns(Fn&& fn, int reps) {
  fn();  // warm-up: faults in pages, warms caches and scratch buffers
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(reps));
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    samples.push_back(
        std::chrono::duration<double, std::nano>(t1 - t0).count());
  }
  return summarize(samples);
}

class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace hetsched::bench
