// E3 — Empirical augmentation requirement vs. the PARTITIONED adversary.
//
// On instances small enough for the exact branch-and-bound to decide
// (n = 10 tasks, m = 3 machines), filter for partitioned-EDF-feasible task
// sets and measure alpha* = the smallest augmentation at which the
// first-fit test accepts.  Theorems I.1 / I.2 guarantee
//   alpha*(FF-EDF) <= 2       and      alpha*(FF-RMS) <= 2.414.
// The table reports the alpha* distribution; the headline cells are `max`
// (must stay below the bound) and p99 (how much of the bound random
// instances actually use).
#include "bench_common.h"
#include "experiments/augmentation.h"
#include "gen/platform_gen.h"
#include "partition/analysis_constants.h"
#include "util/stats.h"

namespace hetsched {
namespace {

void run_kind(Table& table, AdmissionKind kind, double bound,
              const Platform& platform, const char* platform_name,
              Histogram* histogram = nullptr) {
  AugmentationStudySpec spec;
  spec.platform = platform;
  spec.taskset.n = 10;
  spec.taskset.max_task_utilization = platform.max_speed();
  spec.taskset.periods = PeriodSpec::uniform(20, 2000);
  spec.norm_lo = 0.6;
  spec.norm_hi = 1.0;
  spec.trials = 1000;
  spec.seed = 0xE3;
  spec.kind = kind;
  // Pin the segment-tree engine: the study is alpha*-bisection-heavy, and
  // pinning (rather than kAuto) documents that the numbers were produced by
  // the fast path — the equivalence test guarantees they match the naive
  // engine bit for bit.
  spec.engine = PartitionEngine::kSegmentTree;

  const AugmentationStudyResult res = augmentation_vs_partitioned(spec);
  if (histogram != nullptr) {
    for (const double a : res.alphas) histogram->add(a);
  }
  const Summary& s = res.summary;
  table.add_row({to_string(kind), platform_name, Table::fmt(bound, 3),
                 Table::fmt_int(static_cast<std::int64_t>(res.trials_run)),
                 Table::fmt_int(
                     static_cast<std::int64_t>(res.adversary_feasible)),
                 Table::fmt(s.mean, 3), Table::fmt(s.p50, 3),
                 Table::fmt(s.p95, 3), Table::fmt(s.p99, 3),
                 Table::fmt(s.max, 3),
                 s.max <= bound + 1e-6 ? "yes" : "NO"});
}

}  // namespace
}  // namespace hetsched

int main() {
  using namespace hetsched;
  bench::print_header(
      "E3", "empirical augmentation alpha* vs exact partitioned adversary");
  bench::WallTimer timer;

  Table table({"test", "platform", "bound", "trials", "opt-feas", "mean",
               "p50", "p95", "p99", "max", "within-bound"});
  const Platform identical = Platform::identical(3);
  const Platform geometric = geometric_platform(3, 2.0);
  const Platform biglittle = big_little_platform(2, 1, 1.0, 3.0);

  Histogram edf_hist(1.0, EdfConstants::kAlphaPartitioned, 14);
  Histogram rms_hist(1.0, RmsConstants::kAlphaPartitioned, 14);
  run_kind(table, AdmissionKind::kEdf, EdfConstants::kAlphaPartitioned,
           identical, "identical-3", &edf_hist);
  run_kind(table, AdmissionKind::kEdf, EdfConstants::kAlphaPartitioned,
           geometric, "geometric-3x2", &edf_hist);
  run_kind(table, AdmissionKind::kEdf, EdfConstants::kAlphaPartitioned,
           biglittle, "bigLITTLE-2+1", &edf_hist);
  run_kind(table, AdmissionKind::kRmsLiuLayland,
           RmsConstants::kAlphaPartitioned, identical, "identical-3",
           &rms_hist);
  run_kind(table, AdmissionKind::kRmsLiuLayland,
           RmsConstants::kAlphaPartitioned, geometric, "geometric-3x2",
           &rms_hist);
  run_kind(table, AdmissionKind::kRmsLiuLayland,
           RmsConstants::kAlphaPartitioned, biglittle, "bigLITTLE-2+1",
           &rms_hist);

  bench::print_section(
      "alpha* over partitioned-EDF-feasible instances (n=10, m=3)");
  bench::emit(table, "e3_augmentation_partitioned");

  bench::print_section(
      "alpha* histogram, FF-EDF, pooled across platforms (bound 2.0)");
  std::printf("%s", edf_hist.to_string().c_str());
  bench::print_section(
      "alpha* histogram, FF-RMS, pooled across platforms (bound 2.414)");
  std::printf("%s", rms_hist.to_string().c_str());
  std::printf("\n[E3 done in %.1fs]\n", timer.seconds());
  return 0;
}
