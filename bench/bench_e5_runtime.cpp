// E5 — Runtime scaling of the feasibility test (google-benchmark).
//
// The paper claims O(n log n + n m).  We time:
//   * the first-fit partitioner over an (n, m) grid — expect ~linear in n*m,
//   * the closed-form LP augmentation bound — expect ~n log n,
//   * the explicit simplex on the paper's LP — the expensive analysis-only
//     path the feasibility test avoids (the point of the paper's "one need
//     not solve the LP" remark).
// google-benchmark reports ns/op; the per-item column (n*m) exposes the
// claimed linearity directly.
#include <benchmark/benchmark.h>

#include "gen/platform_gen.h"
#include "gen/taskset_gen.h"
#include "dbf/demand_bound.h"
#include "lp/feasibility_lp.h"
#include "partition/first_fit.h"
#include "util/rng.h"

namespace hetsched {
namespace {

struct Workload {
  TaskSet tasks;
  Platform platform;
};

Workload make_workload(std::size_t n, std::size_t m) {
  Rng rng(0xE5 + n * 31 + m);
  Workload w;
  w.platform = geometric_platform(m, std::min(1.2, 1.0 + 8.0 / static_cast<double>(m)));
  TasksetSpec spec;
  spec.n = n;
  spec.max_task_utilization = w.platform.max_speed();
  // ~70% load keeps the partitioner exercising most machines without
  // failing instantly.
  spec.total_utilization =
      std::min(0.7 * w.platform.total_speed(),
               0.3 * static_cast<double>(n) * spec.max_task_utilization);
  spec.periods = PeriodSpec::log_uniform(10, 1000);
  w.tasks = generate_taskset(rng, spec);
  return w;
}

void BM_FirstFitEdf(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto m = static_cast<std::size_t>(state.range(1));
  const Workload w = make_workload(n, m);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        first_fit_partition(w.tasks, w.platform, AdmissionKind::kEdf, 2.0));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n * m));
  state.counters["n*m"] = static_cast<double>(n * m);
}
BENCHMARK(BM_FirstFitEdf)
    ->ArgsProduct({{64, 256, 1024, 4096, 16384}, {2, 8, 32, 128}})
    ->Unit(benchmark::kMicrosecond);

// Engine head-to-head on the full partitioner: the naive scan is the paper's
// O(n m) loop, the segment tree the O(n log m) replacement.  Same inputs,
// bit-identical outputs (tests/engine_equivalence_test.cpp).
void BM_FirstFitEdfNaive(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto m = static_cast<std::size_t>(state.range(1));
  const Workload w = make_workload(n, m);
  for (auto _ : state) {
    benchmark::DoNotOptimize(first_fit_partition(
        w.tasks, w.platform, AdmissionKind::kEdf, 2.0, PartitionEngine::kNaive));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n * m));
}
BENCHMARK(BM_FirstFitEdfNaive)
    ->ArgsProduct({{1024, 16384}, {32, 128}})
    ->Unit(benchmark::kMicrosecond);

void BM_FirstFitEdfTree(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto m = static_cast<std::size_t>(state.range(1));
  const Workload w = make_workload(n, m);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        first_fit_partition(w.tasks, w.platform, AdmissionKind::kEdf, 2.0,
                            PartitionEngine::kSegmentTree));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n * m));
}
BENCHMARK(BM_FirstFitEdfTree)
    ->ArgsProduct({{1024, 16384}, {32, 128}})
    ->Unit(benchmark::kMicrosecond);

// Decision-only accept path with a warm scratch: what the sweeps actually
// run.  No PartitionResult, no Task copies, no allocation after the first
// call.
void BM_FirstFitAcceptsScratch(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto m = static_cast<std::size_t>(state.range(1));
  const Workload w = make_workload(n, m);
  PartitionScratch scratch;
  for (auto _ : state) {
    benchmark::DoNotOptimize(first_fit_accepts(
        w.tasks, w.platform, AdmissionKind::kEdf, 2.0, scratch));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n * m));
}
BENCHMARK(BM_FirstFitAcceptsScratch)
    ->ArgsProduct({{1024, 16384}, {32, 128}})
    ->Unit(benchmark::kMicrosecond);

void BM_FirstFitRmsLiuLayland(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto m = static_cast<std::size_t>(state.range(1));
  const Workload w = make_workload(n, m);
  for (auto _ : state) {
    benchmark::DoNotOptimize(first_fit_partition(
        w.tasks, w.platform, AdmissionKind::kRmsLiuLayland, 2.41));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n * m));
}
BENCHMARK(BM_FirstFitRmsLiuLayland)
    ->ArgsProduct({{256, 4096}, {8, 64}})
    ->Unit(benchmark::kMicrosecond);

void BM_MinLpAugmentation(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Workload w = make_workload(n, 16);
  for (auto _ : state) {
    benchmark::DoNotOptimize(min_lp_augmentation(w.tasks, w.platform));
  }
}
BENCHMARK(BM_MinLpAugmentation)
    ->Arg(256)
    ->Arg(4096)
    ->Arg(65536)
    ->Unit(benchmark::kMicrosecond);

void BM_LpOracle(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Workload w = make_workload(n, 16);
  for (auto _ : state) {
    benchmark::DoNotOptimize(lp_feasible_oracle(w.tasks, w.platform));
  }
}
BENCHMARK(BM_LpOracle)->Arg(256)->Arg(4096)->Unit(benchmark::kMicrosecond);

// The analysis-only path: building and solving the explicit LP.  Orders of
// magnitude slower than the combinatorial test — the reason the paper notes
// the feasibility test never needs to solve it.
void BM_SimplexFeasibility(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Workload w = make_workload(n, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(lp_feasible_simplex(w.tasks, w.platform));
  }
}
BENCHMARK(BM_SimplexFeasibility)
    ->Arg(8)
    ->Arg(16)
    ->Arg(32)
    ->Unit(benchmark::kMillisecond);

// Exact-RTA admission: the pseudo-polynomial upgrade of the RMS bound.
void BM_FirstFitRtaAdmission(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Workload w = make_workload(n, 8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(first_fit_partition(
        w.tasks, w.platform, AdmissionKind::kRmsResponseTime, 2.0));
  }
}
BENCHMARK(BM_FirstFitRtaAdmission)
    ->Arg(16)
    ->Arg(64)
    ->Arg(256)
    ->Unit(benchmark::kMicrosecond);

// Constrained-deadline QPA test on one machine.
void BM_DbfQpa(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(0xE5D + n);
  std::vector<ConstrainedTask> tasks;
  double util = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::int64_t period = rng.uniform_int(20, 2000);
    const std::int64_t deadline = rng.uniform_int(period / 2, period);
    const std::int64_t exec = std::max<std::int64_t>(
        1, static_cast<std::int64_t>(0.6 / static_cast<double>(n) *
                                     static_cast<double>(period)));
    tasks.push_back(ConstrainedTask{exec, deadline, period});
    util += tasks.back().utilization();
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(edf_dbf_feasible_qpa(tasks, Rational(1)));
  }
}
BENCHMARK(BM_DbfQpa)->Arg(8)->Arg(32)->Arg(128)->Unit(
    benchmark::kMicrosecond);

// Augmentation bisection: ~20 first-fit runs.
void BM_MinFeasibleAlpha(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Workload w = make_workload(n, 8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        min_feasible_alpha(w.tasks, w.platform, AdmissionKind::kEdf, 4.0));
  }
}
BENCHMARK(BM_MinFeasibleAlpha)
    ->Arg(64)
    ->Arg(1024)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace hetsched

BENCHMARK_MAIN();
