// E8 — Admission-test ablation: what does the analytic bound cost?
//
// The paper's RMS variant admits via the Liu–Layland bound because the
// proofs need it.  This experiment swaps the per-machine test while keeping
// everything else fixed:
//   EDF utilization bound  (exact for EDF)
//   RMS Liu–Layland        (the paper's test)
//   RMS hyperbolic         (tighter sufficient bound, extension)
//   RMS exact RTA          (ground-truth fixed-priority admission, extension)
// Expected shape: EDF >= RTA >= hyperbolic >= LL pointwise, the RMS family
// converging at low load and fanning out as U/S -> 1; the LL-to-RTA gap is
// the acceptance the paper's certificate structure gives up, and the
// EDF/RMS crossover (RTA beating the raw EDF curve) never happens — EDF
// dominates any fixed-priority policy per machine.
#include "bench_common.h"
#include "experiments/acceptance.h"
#include "gen/platform_gen.h"
#include "partition/first_fit.h"

namespace hetsched {
namespace {

void run_for_n(std::size_t n) {
  AcceptanceSweepSpec spec;
  spec.platform = geometric_platform(8, 1.5, 12.0);
  spec.tasks_per_set = n;
  spec.max_task_utilization = spec.platform.max_speed();
  // Bounded periods keep the RTA's pseudo-polynomial cost low.
  spec.periods = PeriodSpec::uniform(10, 500);
  for (double x = 0.40; x <= 1.001; x += 0.075) {
    spec.normalized_utilizations.push_back(x);
  }
  spec.trials_per_point = 250;
  spec.seed = 0xE8;

  const std::vector<Tester> testers{
      Tester::make_first_fit("edf", AdmissionKind::kEdf, 1.0),
      Tester::make_first_fit("rms-rta", AdmissionKind::kRmsResponseTime, 1.0),
      Tester::make_first_fit("rms-hyperbolic", AdmissionKind::kRmsHyperbolic,
                             1.0),
      Tester::make_first_fit("rms-liu-layland", AdmissionKind::kRmsLiuLayland,
                             1.0),
  };

  bench::print_section("n = " + std::to_string(n) +
                       ", m = 8 geometric ratio 1.5, alpha = 1");
  const AcceptanceCurve curve = run_acceptance_sweep(spec, testers);
  bench::emit(curve.to_table(), "e8_admission_ablation",
              "_n" + std::to_string(n));
  const std::vector<double> ws = curve.weighted_schedulability();
  std::printf("weighted schedulability:");
  for (std::size_t k = 0; k < ws.size(); ++k) {
    std::printf(" %s=%.4f", curve.tester_names[k].c_str(), ws[k]);
  }
  std::printf("\n");
}

}  // namespace
}  // namespace hetsched

int main() {
  using namespace hetsched;
  bench::print_header("E8", "per-machine admission-test ablation");
  bench::WallTimer timer;
  run_for_n(8);
  run_for_n(32);
  std::printf("\n[E8 done in %.1fs]\n", timer.seconds());
  return 0;
}
