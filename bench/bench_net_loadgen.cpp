// Network load generator: replays generated churn traces over loopback
// TCP against the thread-per-core admission server and reports a
// shards × connections scaling matrix — sustained throughput plus
// request-latency percentiles per cell (BENCH_net.json).
//
// Matrix cell (S shards, C connections):
//
//   * The in-process server runs S load tenants plus P = min(S, 4)
//     parity tenants.  C - P "load" connections replay seeded churn
//     traces against the load tenants (round-robin), all multiplexed by
//     one worker thread over poll(2) via PipelinedReplay — this is what
//     lets one cell drive 4096 pipelining connections.
//   * P "parity" connections each drive one parity tenant exclusively
//     with a deterministic trace.  A tenant fed by exactly one
//     connection sees one deterministic request order even while the
//     load connections saturate the same event loops, so its served
//     decision sequence is FNV-1a checksum-compared against an offline
//     replay on a bare OnlinePartitioner — the correctness gate holds in
//     EVERY cell, under full load.  (Load tenants shared by several
//     connections cannot be checksummed: their decision stream depends
//     on the socket interleaving.)
//   * Latency percentiles (p50/p95/p99/p999) merge the round-trip
//     samples of all connections; all JSON latency fields are integer
//     nanoseconds.
//
// A dedicated parity cell (4 shards, 4 connections, window 256 — the
// PR 5 loadgen shape) carries the tail-latency target, and a
// backpressure probe (tiny queue, paused shard, oversized burst) shows
// kRetryLater answered instead of unbounded buffering.
//
// Against an external server (`hetsched_cli serve --listen ...`), pass
// --connect host:port: a single cell runs with --shards/--connections,
// without parity tenants, checksums, or the backpressure probe (the
// peer's platform is unknown).
//
//   bench_net_loadgen [--quick] [--no-target-gate] [--connect H:P]
//                     [--shards S] [--connections C] [--arrivals N]
//                     [--window W]
//
// Targets (gated unless --no-target-gate): best cell >= 2x PR 5's
// 292k admits/s, parity-cell p999 <= 500 us, checksums match in every
// cell, backpressure answers kRetryLater.
#include <poll.h>
#include <sys/resource.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "gen/churn_gen.h"
#include "gen/platform_gen.h"
#include "io/snapshot_format.h"
#include "io/wal.h"
#include "net/client.h"
#include "net/server.h"
#include "net/trace_replay.h"
#include "util/rng.h"

namespace hetsched::net {
namespace {

constexpr double kBaselinePr5AdmitsPerSec = 292076.0;  // BENCH_net.json @ PR 5
constexpr double kTargetAdmitsPerSec = 2.0 * kBaselinePr5AdmitsPerSec;
constexpr std::uint64_t kTargetParityP999Ns = 500000;  // 500 us
constexpr std::size_t kParityWindow = 256;  // PR 5 loadgen pipeline window

struct Options {
  bool quick = false;
  bool gate = true;
  std::string connect;         // empty: in-process matrix
  std::size_t shards = 4;      // --connect mode only
  std::size_t connections = 4; // --connect mode only
  std::size_t load_arrivals = 400000;   // total across load connections
  std::size_t parity_arrivals = 30000;  // per parity connection
  std::size_t window = 256;    // load-connection window upper bound
  bool wal_probe_only = false; // skip the matrix; just the WAL probe
};

struct CellSpec {
  std::size_t shards = 1;
  std::size_t conns = 1;
  // WAL-overhead probe: serve this cell with --wal-dir and the given sync
  // policy instead of the default WAL-off configuration.
  bool wal = false;
  io::WalSync wal_sync = io::WalSync::kBatch;
};

struct CellResult {
  CellSpec spec;
  std::size_t window = 0;  // load-connection window used
  std::uint64_t requests = 0, admits = 0, rejects = 0, departs = 0,
                retries = 0, bad = 0;
  double wall_s = 0.0, admits_per_sec = 0.0, requests_per_sec = 0.0;
  std::uint64_t p50 = 0, p95 = 0, p99 = 0, p999 = 0;
  bool checksum_match = true;
  bool ok = false;
  std::string error;
};

ChurnTrace seeded_trace(std::uint64_t salt, std::uint64_t index,
                        std::size_t arrivals) {
  Rng rng(salt + index * 0x9E3779B97F4A7C15ULL);
  ChurnSpec spec;
  spec.arrivals = arrivals;
  return generate_churn_trace(rng, spec);
}

std::uint64_t percentile_ns(const std::vector<std::uint64_t>& sorted,
                            double q) {
  if (sorted.empty()) return 0;
  const double rank = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  const double v = static_cast<double>(sorted[lo]) +
                   frac * (static_cast<double>(sorted[hi]) -
                           static_cast<double>(sorted[lo]));
  return static_cast<std::uint64_t>(std::llround(v));
}

// One multiplexed connection: its client, its resumable replay, and the
// trace it replays (owned here so PipelinedReplay's reference stays
// valid).
struct ConnState {
  ConnState(ChurnTrace trace_in, std::uint16_t shard, std::size_t window)
      : trace(std::move(trace_in)), rp(trace, shard, window,
                                       /*collect_latency=*/true) {}
  ChurnTrace trace;
  PipelinedReplay rp;
  Client client;
  bool done = false;
  bool parity = false;
  std::string error;
};

std::uint64_t total_progress(
    const std::vector<std::unique_ptr<ConnState>>& conns) {
  std::uint64_t p = 0;
  for (const auto& c : conns) p += c->rp.progress();
  return p;
}

// Runs one matrix cell.  `pf` must match the server platform when
// checksums are wanted; `addr` empty means start an in-process server.
CellResult run_cell(const Platform& pf, const CellSpec& spec,
                    const Options& o, std::size_t parity_arrivals,
                    const std::string& external_addr) {
  CellResult res;
  res.spec = spec;
  const bool in_process = external_addr.empty();
  const std::size_t parity =
      in_process ? std::min<std::size_t>({spec.shards, spec.conns, 4}) : 0;
  const std::size_t load_conns = spec.conns - parity;

  // Load window shrinks as connections grow so total in-flight requests
  // stay bounded (~64k frames) regardless of the cell.
  std::size_t window = o.window;
  if (load_conns > 0) {
    const std::size_t cap = std::max<std::size_t>(8, 65536 / load_conns);
    window = std::min(window, cap);
  }
  res.window = window;

  ServerOptions sopts;
  sopts.shards = spec.shards + parity;
  sopts.alpha = 2.0;
  // Well beyond 2x the largest window: keeps parity connections free of
  // kRetryLater (checksums stay comparable) and, via the controller's
  // reserve(queue_depth), pre-warms the arena deep enough that mid-run
  // growth never spikes the latency tail.
  sopts.queue_depth =
      std::max<std::size_t>(8192, 2 * std::max(window, kParityWindow));
  if (in_process && spec.wal) {
    const std::string dir = "bench-wal-dir";
    std::filesystem::remove_all(dir);  // fresh: measure append, not replay
    io::ensure_dir(dir);
    sopts.wal_dir = dir;
    sopts.wal_sync = spec.wal_sync;
  }
  Server server(pf, sopts);
  std::string addr = external_addr;
  if (in_process) {
    std::string err;
    if (!server.start(&err)) {
      res.error = "server start failed: " + err;
      return res;
    }
    addr = "127.0.0.1:" + std::to_string(server.port());
  }

  const std::size_t load_arrivals_each =
      load_conns == 0
          ? 0
          : std::max<std::size_t>(64, o.load_arrivals / load_conns);

  std::vector<std::unique_ptr<ConnState>> conns;
  conns.reserve(spec.conns);
  for (std::size_t c = 0; c < spec.conns; ++c) {
    const bool is_parity = c < parity;
    const auto shard = static_cast<std::uint16_t>(
        is_parity ? spec.shards + c : (c - parity) % spec.shards);
    conns.push_back(std::make_unique<ConnState>(
        is_parity ? seeded_trace(0x7A417, c, parity_arrivals)
                  : seeded_trace(0x10AD, c - parity, load_arrivals_each),
        shard, is_parity ? kParityWindow : window));
    conns.back()->parity = is_parity;
  }
  for (auto& cs : conns) {
    std::string err;
    if (!cs->client.connect(addr, 5000, &err)) {
      res.error = "connect failed: " + err;
      return res;
    }
  }

  // Multiplex every connection over one poll set until all replays
  // finish.  A poll round that times out with zero global progress means
  // the server stalled.
  const auto t0 = std::chrono::steady_clock::now();
  std::size_t active = 0;
  for (auto& cs : conns) {
    const auto st = cs->rp.step(cs->client);
    if (st == PipelinedReplay::State::kRunning) {
      ++active;
    } else if (st == PipelinedReplay::State::kError) {
      cs->done = true;
      cs->error = cs->client.last_error();
    } else {
      cs->done = true;
    }
  }
  std::vector<pollfd> pfds;
  std::vector<std::size_t> pidx;
  while (active > 0) {
    pfds.clear();
    pidx.clear();
    for (std::size_t i = 0; i < conns.size(); ++i) {
      ConnState& cs = *conns[i];
      if (cs.done) continue;
      short events = 0;
      if (cs.rp.want_read()) events |= POLLIN;
      if (cs.rp.want_write()) events |= POLLOUT;
      if (events == 0) events = POLLIN;
      pfds.push_back(pollfd{cs.client.fd(), events, 0});
      pidx.push_back(i);
    }
    const std::uint64_t before = total_progress(conns);
    const int n =
        ::poll(pfds.data(), static_cast<nfds_t>(pfds.size()), 10000);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      if (total_progress(conns) == before) {
        res.error = "replay stalled (no progress in 10 s)";
        return res;
      }
      continue;
    }
    for (std::size_t k = 0; k < pfds.size(); ++k) {
      if (pfds[k].revents == 0) continue;
      ConnState& cs = *conns[pidx[k]];
      const auto st = cs.rp.step(cs.client);
      if (st == PipelinedReplay::State::kRunning) continue;
      cs.done = true;
      --active;
      if (st == PipelinedReplay::State::kError) {
        cs.error = cs.client.last_error();
      }
    }
  }
  const auto t1 = std::chrono::steady_clock::now();
  res.wall_s = std::chrono::duration<double>(t1 - t0).count();

  std::vector<std::uint64_t> latencies;
  for (const auto& cs : conns) {
    const ReplaySummary& s = cs->rp.summary();
    if (!s.ok) {
      res.error = "connection failed: " +
                  (cs->error.empty() ? std::string("replay error") : cs->error);
      return res;
    }
    res.requests += s.requests;
    res.admits += s.admitted;
    res.rejects += s.rejected;
    res.departs += s.departed;
    res.retries += s.retried;
    res.bad += s.bad;
    latencies.insert(latencies.end(), s.latencies_ns.begin(),
                     s.latencies_ns.end());
  }

  if (in_process) {
    for (const auto& cs : conns) {
      if (!cs->parity) continue;
      const ReplaySummary& s = cs->rp.summary();
      if (s.retried != 0) {
        // The parity queue is sized so this cannot happen; a retry would
        // make the checksum incomparable, so treat it as a failure.
        res.checksum_match = false;
        continue;
      }
      const std::uint64_t offline = offline_decision_checksum(
          pf, cs->trace, sopts.kind, sopts.alpha, sopts.engine);
      if (s.checksum != offline) {
        std::fprintf(stderr,
                     "cell %zux%zu: served checksum %016llx != offline "
                     "%016llx\n",
                     spec.shards, spec.conns,
                     static_cast<unsigned long long>(s.checksum),
                     static_cast<unsigned long long>(offline));
        res.checksum_match = false;
      }
    }
    server.request_stop();
    server.wait();
  }

  std::sort(latencies.begin(), latencies.end());
  res.p50 = percentile_ns(latencies, 0.50);
  res.p95 = percentile_ns(latencies, 0.95);
  res.p99 = percentile_ns(latencies, 0.99);
  res.p999 = percentile_ns(latencies, 0.999);
  res.admits_per_sec =
      res.wall_s > 0 ? static_cast<double>(res.admits) / res.wall_s : 0.0;
  res.requests_per_sec =
      res.wall_s > 0 ? static_cast<double>(res.requests) / res.wall_s : 0.0;
  res.ok = true;
  return res;
}

void raise_fd_limit() {
  rlimit rl{};
  if (::getrlimit(RLIMIT_NOFILE, &rl) != 0) return;
  rlim_t want = 65536;
  if (rl.rlim_max != RLIM_INFINITY && want > rl.rlim_max) want = rl.rlim_max;
  if (rl.rlim_cur < want) {
    rl.rlim_cur = want;
    ::setrlimit(RLIMIT_NOFILE, &rl);
  }
}

}  // namespace
}  // namespace hetsched::net

int main(int argc, char** argv) {
  using namespace hetsched;
  using namespace hetsched::net;

  Options o;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      o.quick = true;
      o.load_arrivals = 8000;
      o.parity_arrivals = 2000;
    } else if (arg == "--no-target-gate") {
      o.gate = false;
    } else if (arg == "--wal-probe-only") {
      // Dev loop for the durability plane: run only the WAL-overhead
      // probe (no matrix, no JSON), exit 0 iff the ratio target holds.
      o.wal_probe_only = true;
    } else if (arg == "--connect" && i + 1 < argc) {
      o.connect = argv[++i];
    } else if (arg == "--shards" && i + 1 < argc) {
      o.shards =
          static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (arg == "--connections" && i + 1 < argc) {
      o.connections =
          static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (arg == "--arrivals" && i + 1 < argc) {
      o.load_arrivals =
          static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (arg == "--window" && i + 1 < argc) {
      o.window =
          static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else {
      std::fprintf(stderr, "unknown argument '%s'\n", arg.c_str());
      return 2;
    }
  }
  if (o.shards < 1 || o.connections < 1 || o.window < 1 ||
      o.load_arrivals < 1) {
    std::fprintf(stderr, "bad --shards/--connections/--window/--arrivals\n");
    return 2;
  }
  raise_fd_limit();

  const Platform pf = geometric_platform(8, 1.5);
  const bool in_process = o.connect.empty();

  // WAL-overhead probe cells, shared by the full run and the
  // --wal-probe-only dev loop: the parity-cell shape with no WAL at all,
  // with --wal-sync=off (append + group write(2), never fsync), and with
  // --wal-sync=batch (pacer-driven group fsync on top).  The gated ratio
  // is batch/off — the cost of the durability policy itself.  The no-WAL
  // cell is context, not a gate: merely holding WAL file descriptors
  // open costs 10-20% on some kernels even with every append compiled
  // out (4x involuntary context switches, 3x sendmsg wall time for
  // identical syscall counts), so batch/none mixes that scheduler
  // artifact into the number the gate is meant to police.
  const CellSpec wal_probe_none{4, 4};
  CellSpec wal_probe_off{4, 4};
  wal_probe_off.wal = true;
  wal_probe_off.wal_sync = io::WalSync::kOff;
  CellSpec wal_probe_batch{4, 4};
  wal_probe_batch.wal = true;
  wal_probe_batch.wal_sync = io::WalSync::kBatch;
  const auto wal_probe_arrivals = [](const Options& opt) {
    return opt.quick ? opt.parity_arrivals : std::size_t{50000};
  };
  double wal_none_aps = 0.0, wal_off_aps = 0.0, wal_batch_aps = 0.0,
         wal_ratio = 0.0;
  bool wal_ok = true;

  if (o.wal_probe_only) {
    if (!in_process) {
      std::fprintf(stderr, "--wal-probe-only needs the in-process server\n");
      return 2;
    }
    const CellResult rbatch =
        run_cell(pf, wal_probe_batch, o, wal_probe_arrivals(o), o.connect);
    const CellResult roff =
        run_cell(pf, wal_probe_off, o, wal_probe_arrivals(o), o.connect);
    const CellResult rnone =
        run_cell(pf, wal_probe_none, o, wal_probe_arrivals(o), o.connect);
    std::filesystem::remove_all("bench-wal-dir");
    if (!rnone.ok || !roff.ok || !rbatch.ok) {
      std::fprintf(stderr, "wal probe failed: %s%s%s\n", rnone.error.c_str(),
                   roff.error.c_str(), rbatch.error.c_str());
      return 1;
    }
    const double ratio = roff.admits_per_sec > 0
                             ? rbatch.admits_per_sec / roff.admits_per_sec
                             : 0.0;
    const double vs_none = rnone.admits_per_sec > 0
                               ? rbatch.admits_per_sec / rnone.admits_per_sec
                               : 0.0;
    std::printf("wal probe: none %.0f, sync=off %.0f, sync=batch %.0f "
                "admits/s (batch/off %.3f, target >= 0.8; batch/none "
                "%.3f)\n",
                rnone.admits_per_sec, roff.admits_per_sec,
                rbatch.admits_per_sec, ratio, vs_none);
    return ratio >= 0.8 ? 0 : 1;
  }

  // The matrix.  The last cell is the 4-shard parity cell: the PR 5
  // loadgen shape (every connection the sole driver of its tenant,
  // window 256) that carries the p999 target.
  std::vector<CellSpec> cells;
  if (!in_process) {
    cells.push_back(CellSpec{o.shards, o.connections});
  } else if (o.quick) {
    cells.push_back(CellSpec{1, 4});
    cells.push_back(CellSpec{2, 16});
    cells.push_back(CellSpec{2, 2});  // parity cell (quick shape)
  } else {
    for (const std::size_t s : {std::size_t{1}, std::size_t{4},
                                std::size_t{16}}) {
      for (const std::size_t c : {std::size_t{16}, std::size_t{256},
                                  std::size_t{4096}}) {
        cells.push_back(CellSpec{s, c});
      }
    }
    cells.push_back(CellSpec{4, 4});  // parity cell
  }
  const std::size_t parity_cell = cells.size() - 1;
  // The dedicated parity cell carries the p999 target; run it at PR 5's
  // 50k arrivals per connection so the tail is measured over a long
  // steady state, not dominated by warmup.
  const std::size_t parity_cell_arrivals = o.quick ? o.parity_arrivals : 50000;

  std::printf("net loadgen: %zu cell(s)%s\n", cells.size(),
              in_process ? " (in-process server)" : "");

  std::vector<CellResult> results;
  results.reserve(cells.size());
  bool all_ok = true;
  bool checksum_match = true;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    // The parity cell is measured as the median-of-3 by p999: the tail
    // target is about the server, not about whatever else the host ran
    // during one particular 0.5 s window.
    const int repeats = (in_process && i == parity_cell && !o.quick) ? 3 : 1;
    std::vector<CellResult> reps;
    for (int rep = 0; rep < repeats; ++rep) {
      reps.push_back(run_cell(
          pf, cells[i], o,
          i == parity_cell ? parity_cell_arrivals : o.parity_arrivals,
          o.connect));
      if (!reps.back().ok || !reps.back().checksum_match) break;
    }
    std::sort(reps.begin(), reps.end(),
              [](const CellResult& a, const CellResult& b) {
                return a.p999 < b.p999;
              });
    CellResult r = std::move(reps[reps.size() / 2]);
    if (!r.ok) {
      std::fprintf(stderr, "cell %zux%zu failed: %s\n", cells[i].shards,
                   cells[i].conns, r.error.c_str());
      all_ok = false;
    } else {
      std::printf(
          "cell %2zu shards x %4zu conns (window %3zu): %8.0f admits/s "
          "%9.0f req/s  p50=%llu p99=%llu p999=%llu ns  retries=%llu %s\n",
          r.spec.shards, r.spec.conns, r.window, r.admits_per_sec,
          r.requests_per_sec, static_cast<unsigned long long>(r.p50),
          static_cast<unsigned long long>(r.p99),
          static_cast<unsigned long long>(r.p999),
          static_cast<unsigned long long>(r.retries),
          in_process ? (r.checksum_match ? "checksum=match" : "checksum=FAIL")
                     : "checksum=skipped");
    }
    checksum_match = checksum_match && r.checksum_match;
    results.push_back(std::move(r));
  }
  if (!all_ok) return 1;

  const CellResult* best = &results[0];
  for (const CellResult& r : results) {
    if (r.admits_per_sec > best->admits_per_sec) best = &r;
  }
  const CellResult& parity = results[parity_cell];

  // Backpressure probe: tiny queue, paused shard, a burst larger than the
  // queue — the overflow must come back kRetryLater, and the queued
  // remainder must still be decided after resume.
  std::uint64_t bp_retries = 0, bp_decided = 0;
  constexpr std::uint64_t kBurst = 256;
  if (in_process) {
    ServerOptions bp;
    bp.shards = 1;
    bp.queue_depth = 16;
    bp.start_paused = true;
    Server bserver(pf, bp);
    std::string err;
    if (!bserver.start(&err)) {
      std::fprintf(stderr, "backpressure server start failed: %s\n",
                   err.c_str());
      return 1;
    }
    Client client;
    if (!client.connect("127.0.0.1:" + std::to_string(bserver.port()), 5000,
                        &err)) {
      std::fprintf(stderr, "backpressure connect failed: %s\n", err.c_str());
      return 1;
    }
    for (std::uint64_t i = 0; i < kBurst; ++i) {
      client.queue_request(Request::admit(0, i, 1, 1000));
    }
    if (!client.flush(5000)) {
      std::fprintf(stderr, "backpressure flush failed: %s\n",
                   client.last_error().c_str());
      return 1;
    }
    // Wait until every frame was routed (enqueued or bounced), then let
    // the shard drain the queued remainder.
    while (bserver.stats().frames_rx < kBurst) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    bserver.resume_shards();
    for (std::uint64_t i = 0; i < kBurst; ++i) {
      Response r;
      if (!client.recv_response(&r, 5000)) {
        std::fprintf(stderr, "backpressure recv failed: %s\n",
                     client.last_error().c_str());
        return 1;
      }
      if (r.status == Status::kRetryLater) {
        ++bp_retries;
      } else {
        ++bp_decided;
      }
    }
    bserver.request_stop();
    bserver.wait();
    std::printf("backpressure: burst %llu into depth-16 queue -> %llu "
                "kRetryLater, %llu decided after resume\n",
                static_cast<unsigned long long>(kBurst),
                static_cast<unsigned long long>(bp_retries),
                static_cast<unsigned long long>(bp_decided));
  }
  const bool backpressure_ok =
      !in_process || (bp_retries > 0 && bp_retries + bp_decided == kBurst);

  // WAL-overhead probe: the parity-cell shape served three ways, same
  // traces.  Group commit plus the pacer thread are supposed to make
  // durability cheap; the target is batch >= 80% of --wal-sync=off.
  if (in_process) {
    const CellResult rnone =
        run_cell(pf, wal_probe_none, o, wal_probe_arrivals(o), o.connect);
    const CellResult roff =
        run_cell(pf, wal_probe_off, o, wal_probe_arrivals(o), o.connect);
    const CellResult rbatch =
        run_cell(pf, wal_probe_batch, o, wal_probe_arrivals(o), o.connect);
    std::filesystem::remove_all("bench-wal-dir");
    if (!rnone.ok || !roff.ok || !rbatch.ok || !rnone.checksum_match ||
        !roff.checksum_match || !rbatch.checksum_match) {
      std::fprintf(stderr, "wal probe failed: %s%s%s\n", rnone.error.c_str(),
                   roff.error.c_str(), rbatch.error.c_str());
      wal_ok = false;
    } else {
      wal_none_aps = rnone.admits_per_sec;
      wal_off_aps = roff.admits_per_sec;
      wal_batch_aps = rbatch.admits_per_sec;
      wal_ratio = wal_off_aps > 0 ? wal_batch_aps / wal_off_aps : 0.0;
      checksum_match =
          checksum_match && roff.checksum_match && rbatch.checksum_match;
      // Hardware-dependent like the throughput targets: measured always,
      // gated only in full runs.
      wal_ok = o.quick || wal_ratio >= 0.8;
      std::printf("wal probe: none %.0f, sync=off %.0f, sync=batch %.0f "
                  "admits/s (batch/off %.3f, target >= 0.8)\n",
                  wal_none_aps, wal_off_aps, wal_batch_aps, wal_ratio);
    }
  }

  // --quick keeps the correctness gates but drops the throughput/tail
  // targets: CI asserts target_met on hardware it does not control.
  const bool throughput_met =
      o.quick || best->admits_per_sec >= kTargetAdmitsPerSec;
  const bool tail_met = o.quick || parity.p999 <= kTargetParityP999Ns;
  const bool target_met = throughput_met && tail_met && checksum_match &&
                          backpressure_ok && wal_ok;

  std::printf("best cell: %zu shards x %zu conns at %.0f admits/s; parity "
              "p999 %llu ns\n",
              best->spec.shards, best->spec.conns, best->admits_per_sec,
              static_cast<unsigned long long>(parity.p999));

  std::ostringstream json;
  json << "{\n  \"benchmark\": \"net_loadgen\",\n"
       << "  \"mode\": \""
       << (in_process ? (o.quick ? "loopback_quick" : "loopback") : "connect")
       << "\",\n  \"cells\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const CellResult& r = results[i];
    json << "    {\"shards\": " << r.spec.shards
         << ", \"connections\": " << r.spec.conns
         << ", \"window\": " << r.window << ", \"requests\": " << r.requests
         << ", \"admits\": " << r.admits << ", \"retries\": " << r.retries
         << ", \"wall_s\": " << r.wall_s
         << ", \"admits_per_sec\": " << r.admits_per_sec
         << ", \"requests_per_sec\": " << r.requests_per_sec
         << ", \"latency_p50_ns\": " << r.p50
         << ", \"latency_p95_ns\": " << r.p95
         << ", \"latency_p99_ns\": " << r.p99
         << ", \"latency_p999_ns\": " << r.p999 << ", \"checksum_match\": "
         << (in_process ? (r.checksum_match ? "true" : "false") : "null")
         << (i + 1 < results.size() ? "},\n" : "}\n");
  }
  json << "  ],\n"
       << "  \"best_cell\": {\"shards\": " << best->spec.shards
       << ", \"connections\": " << best->spec.conns
       << ", \"admits_per_sec\": " << best->admits_per_sec << "},\n"
       << "  \"parity_cell\": {\"shards\": " << parity.spec.shards
       << ", \"connections\": " << parity.spec.conns
       << ", \"admits_per_sec\": " << parity.admits_per_sec
       << ", \"latency_p50_ns\": " << parity.p50
       << ", \"latency_p99_ns\": " << parity.p99
       << ", \"latency_p999_ns\": " << parity.p999 << "},\n"
       << "  \"wal\": {\"sync\": \"batch\", \"admits_per_sec_none\": "
       << wal_none_aps << ", \"admits_per_sec_off\": " << wal_off_aps
       << ", \"admits_per_sec_batch\": " << wal_batch_aps
       << ", \"ratio_batch_vs_off\": " << wal_ratio
       << ", \"within_20pct\": "
       << (in_process ? (wal_ok ? "true" : "false") : "null") << "},\n"
       << "  \"baseline_pr5_admits_per_sec\": 292076,\n"
       << "  \"checksum_match\": "
       << (in_process ? (checksum_match ? "true" : "false") : "null") << ",\n"
       << "  \"backpressure_retries\": " << bp_retries << ",\n"
       << "  \"backpressure_decided\": " << bp_decided << ",\n"
       << "  \"target\": \"best cell >= 2x PR 5 (584k admits/s); parity-cell "
          "p999 <= 500us; served decisions bit-identical to offline replay "
          "in every cell; full queue answers RETRY_LATER; --wal-sync=batch "
          "within 20% of WAL-off throughput\",\n"
       << "  \"target_met\": " << (target_met ? "true" : "false") << "\n}\n";
  if (std::ofstream f{"BENCH_net.json"}) {
    f << json.str();
    std::printf("[json: BENCH_net.json]\n");
  }

  if (!checksum_match || !backpressure_ok) return 1;
  if (!wal_ok) {
    std::fprintf(stderr, "wal target missed: batch/off ratio %.3f (>= 0.8)\n",
                 wal_ratio);
    if (o.gate) return 1;
  }
  if (!throughput_met || !tail_met) {
    std::fprintf(stderr,
                 "target missed: best %.0f admits/s (>= %.0f), parity p999 "
                 "%llu ns (<= %llu)\n",
                 best->admits_per_sec, kTargetAdmitsPerSec,
                 static_cast<unsigned long long>(parity.p999),
                 static_cast<unsigned long long>(kTargetParityP999Ns));
    if (o.gate) return 1;
  }
  return 0;
}
