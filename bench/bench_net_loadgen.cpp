// Network load generator: replays generated churn traces over loopback
// TCP against the sharded admission server and reports sustained
// throughput plus request-latency percentiles (BENCH_net.json).
//
// Three phases:
//
//   1. Throughput: an in-process server with S shards, one pipelined
//      client connection per shard, each replaying its own seeded churn
//      trace.  Wall time is measured around all connections; throughput
//      is admitted tasks per second.  Every connection's decision
//      sequence is checksum-compared (FNV-1a, as in bench_obs_overhead)
//      against an offline replay of the same trace on a bare
//      OnlinePartitioner — the bench is also a correctness probe.
//   2. Latency: percentiles (p50/p95/p99/p999) over the merged
//      request->response round-trip samples from phase 1.
//   3. Backpressure: a deliberately tiny queue with paused shards shows
//      the server answering kRetryLater instead of buffering without
//      bound, then draining cleanly once shards resume.
//
// Against an external server (`hetsched_cli serve --listen ...`), pass
// --connect host:port; the in-process server and the offline checksum
// comparison are skipped (the peer's platform is unknown).
//
//   bench_net_loadgen [--quick] [--no-target-gate] [--connect H:P]
//                     [--shards S] [--arrivals N] [--window W]
//
// Target (gated unless --no-target-gate): >= 100k admits/s sustained.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "gen/churn_gen.h"
#include "gen/platform_gen.h"
#include "net/client.h"
#include "net/server.h"
#include "net/trace_replay.h"
#include "util/rng.h"

namespace hetsched::net {
namespace {

constexpr double kTargetAdmitsPerSec = 100e3;

struct Options {
  bool quick = false;
  bool gate = true;
  std::string connect;  // empty: in-process server
  std::size_t shards = 4;
  std::size_t arrivals = 50000;  // per shard
  std::size_t window = 256;
  std::size_t machines = 8;
  double alpha = 2.0;
};

ChurnTrace shard_trace(std::uint64_t shard, std::size_t arrivals) {
  Rng rng(0x10AD + shard * 0x9E3779B97F4A7C15ULL);
  ChurnSpec spec;
  spec.arrivals = arrivals;
  return generate_churn_trace(rng, spec);
}

double percentile_ns(const std::vector<std::uint64_t>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const double rank = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return static_cast<double>(sorted[lo]) +
         frac * (static_cast<double>(sorted[hi]) -
                 static_cast<double>(sorted[lo]));
}

struct ConnResult {
  ReplaySummary sum;
  std::string error;
};

}  // namespace
}  // namespace hetsched::net

int main(int argc, char** argv) {
  using namespace hetsched;
  using namespace hetsched::net;

  Options o;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      o.quick = true;
      o.shards = 2;
      o.arrivals = 2000;
    } else if (arg == "--no-target-gate") {
      o.gate = false;
    } else if (arg == "--connect" && i + 1 < argc) {
      o.connect = argv[++i];
    } else if (arg == "--shards" && i + 1 < argc) {
      o.shards = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (arg == "--arrivals" && i + 1 < argc) {
      o.arrivals =
          static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (arg == "--window" && i + 1 < argc) {
      o.window = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else {
      std::fprintf(stderr, "unknown argument '%s'\n", arg.c_str());
      return 2;
    }
  }
  if (o.shards < 1 || o.shards > kMaxShards || o.window < 1 ||
      o.arrivals < 1) {
    std::fprintf(stderr, "bad --shards/--window/--arrivals\n");
    return 2;
  }

  const Platform pf = geometric_platform(o.machines, 1.5);
  const bool in_process = o.connect.empty();

  std::printf("net loadgen: %zu shard(s), %zu arrivals each, window %zu%s\n",
              o.shards, o.arrivals, o.window,
              in_process ? " (in-process server)" : "");

  // Phase 1+2: throughput and latency.  Queue depth >= window per shard
  // guarantees zero retries, which keeps checksums comparable.
  Server* server = nullptr;
  ServerOptions sopts;
  sopts.shards = o.shards;
  sopts.alpha = o.alpha;
  sopts.queue_depth = std::max<std::size_t>(1024, 2 * o.window);
  Server in_proc_server(pf, sopts);
  std::string addr = o.connect;
  if (in_process) {
    std::string err;
    if (!in_proc_server.start(&err)) {
      std::fprintf(stderr, "server start failed: %s\n", err.c_str());
      return 1;
    }
    server = &in_proc_server;
    addr = "127.0.0.1:" + std::to_string(server->port());
  }

  std::vector<ChurnTrace> traces;
  traces.reserve(o.shards);
  for (std::size_t s = 0; s < o.shards; ++s) {
    traces.push_back(shard_trace(s, o.arrivals));
  }

  std::vector<ConnResult> results(o.shards);
  std::vector<std::thread> workers;
  workers.reserve(o.shards);
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t s = 0; s < o.shards; ++s) {
    workers.emplace_back([&, s] {
      Client client;
      std::string err;
      if (!client.connect(addr, 5000, &err)) {
        results[s].error = err;
        return;
      }
      results[s].sum = replay_trace_over_client(
          client, traces[s], static_cast<std::uint16_t>(s), o.window, 10000,
          /*collect_latency=*/true);
      if (!results[s].sum.ok) results[s].error = client.last_error();
    });
  }
  for (std::thread& t : workers) t.join();
  const auto t1 = std::chrono::steady_clock::now();
  const double wall_s = std::chrono::duration<double>(t1 - t0).count();

  std::uint64_t requests = 0, admits = 0, rejects = 0, departs = 0,
                retries = 0, bad = 0;
  std::vector<std::uint64_t> latencies;
  bool all_ok = true;
  for (std::size_t s = 0; s < o.shards; ++s) {
    const ConnResult& r = results[s];
    if (!r.sum.ok) {
      std::fprintf(stderr, "connection %zu failed: %s\n", s, r.error.c_str());
      all_ok = false;
      continue;
    }
    requests += r.sum.requests;
    admits += r.sum.admitted;
    rejects += r.sum.rejected;
    departs += r.sum.departed;
    retries += r.sum.retried;
    bad += r.sum.bad;
    latencies.insert(latencies.end(), r.sum.latencies_ns.begin(),
                     r.sum.latencies_ns.end());
  }
  if (!all_ok) return 1;

  bool checksum_match = true;
  if (in_process) {
    for (std::size_t s = 0; s < o.shards; ++s) {
      if (results[s].sum.retried != 0) continue;  // not comparable
      const std::uint64_t offline = offline_decision_checksum(
          pf, traces[s], sopts.kind, sopts.alpha, sopts.engine);
      if (results[s].sum.checksum != offline) {
        std::fprintf(stderr,
                     "shard %zu: served checksum %016llx != offline %016llx\n",
                     s,
                     static_cast<unsigned long long>(results[s].sum.checksum),
                     static_cast<unsigned long long>(offline));
        checksum_match = false;
      }
    }
  }

  std::sort(latencies.begin(), latencies.end());
  const double p50 = percentile_ns(latencies, 0.50);
  const double p95 = percentile_ns(latencies, 0.95);
  const double p99 = percentile_ns(latencies, 0.99);
  const double p999 = percentile_ns(latencies, 0.999);
  const double admits_per_sec =
      wall_s > 0 ? static_cast<double>(admits) / wall_s : 0.0;
  const double requests_per_sec =
      wall_s > 0 ? static_cast<double>(requests) / wall_s : 0.0;

  std::printf("throughput: %llu requests (%llu admits, %llu rejects, "
              "%llu departs) in %.3f s\n",
              static_cast<unsigned long long>(requests),
              static_cast<unsigned long long>(admits),
              static_cast<unsigned long long>(rejects),
              static_cast<unsigned long long>(departs), wall_s);
  std::printf("  %.0f admits/s, %.0f requests/s, retries=%llu, bad=%llu\n",
              admits_per_sec, requests_per_sec,
              static_cast<unsigned long long>(retries),
              static_cast<unsigned long long>(bad));
  std::printf("latency ns: p50=%.0f p95=%.0f p99=%.0f p999=%.0f (%zu samples)"
              "\n",
              p50, p95, p99, p999, latencies.size());
  std::printf("checksums vs offline replay: %s\n",
              in_process ? (checksum_match ? "match" : "MISMATCH")
                         : "skipped (--connect)");

  if (in_process) {
    server->request_stop();
    server->wait();
  }

  // Phase 3: backpressure.  Tiny queue, paused shard, a burst larger than
  // the queue: the overflow must come back kRetryLater, and the queued
  // remainder must still be decided after resume.
  std::uint64_t bp_retries = 0, bp_decided = 0;
  constexpr std::uint64_t kBurst = 256;
  {
    ServerOptions bp;
    bp.shards = 1;
    bp.queue_depth = 16;
    bp.start_paused = true;
    Server bserver(pf, bp);
    std::string err;
    if (!bserver.start(&err)) {
      std::fprintf(stderr, "backpressure server start failed: %s\n",
                   err.c_str());
      return 1;
    }
    Client client;
    if (!client.connect("127.0.0.1:" + std::to_string(bserver.port()), 5000,
                        &err)) {
      std::fprintf(stderr, "backpressure connect failed: %s\n", err.c_str());
      return 1;
    }
    for (std::uint64_t i = 0; i < kBurst; ++i) {
      client.queue_request(Request::admit(0, i, 1, 1000));
    }
    if (!client.flush(5000)) {
      std::fprintf(stderr, "backpressure flush failed: %s\n",
                   client.last_error().c_str());
      return 1;
    }
    // Wait until every frame was routed (enqueued or bounced), then let
    // the shard drain the queued remainder.
    while (bserver.stats().frames_rx < kBurst) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    bserver.resume_shards();
    for (std::uint64_t i = 0; i < kBurst; ++i) {
      Response r;
      if (!client.recv_response(&r, 5000)) {
        std::fprintf(stderr, "backpressure recv failed: %s\n",
                     client.last_error().c_str());
        return 1;
      }
      if (r.status == Status::kRetryLater) {
        ++bp_retries;
      } else {
        ++bp_decided;
      }
    }
    bserver.request_stop();
    bserver.wait();
  }
  std::printf("backpressure: burst %llu into depth-16 queue -> %llu "
              "kRetryLater, %llu decided after resume\n",
              static_cast<unsigned long long>(kBurst),
              static_cast<unsigned long long>(bp_retries),
              static_cast<unsigned long long>(bp_decided));
  const bool backpressure_ok =
      bp_retries > 0 && bp_retries + bp_decided == kBurst;

  const bool throughput_met = admits_per_sec >= kTargetAdmitsPerSec;
  const bool target_met = throughput_met && checksum_match && backpressure_ok;

  std::ostringstream json;
  json << "{\n  \"benchmark\": \"net_loadgen\",\n"
       << "  \"mode\": \"" << (in_process ? "loopback" : "connect")
       << "\",\n"
       << "  \"shards\": " << o.shards << ",\n"
       << "  \"arrivals_per_shard\": " << o.arrivals << ",\n"
       << "  \"window\": " << o.window << ",\n"
       << "  \"requests\": " << requests << ",\n"
       << "  \"admits\": " << admits << ",\n"
       << "  \"rejects\": " << rejects << ",\n"
       << "  \"departs\": " << departs << ",\n"
       << "  \"retries\": " << retries << ",\n"
       << "  \"wall_s\": " << wall_s << ",\n"
       << "  \"admits_per_sec\": " << admits_per_sec << ",\n"
       << "  \"requests_per_sec\": " << requests_per_sec << ",\n"
       << "  \"latency_p50_ns\": " << p50 << ",\n"
       << "  \"latency_p95_ns\": " << p95 << ",\n"
       << "  \"latency_p99_ns\": " << p99 << ",\n"
       << "  \"latency_p999_ns\": " << p999 << ",\n"
       << "  \"checksum_match\": "
       << (in_process ? (checksum_match ? "true" : "false") : "null") << ",\n"
       << "  \"backpressure_retries\": " << bp_retries << ",\n"
       << "  \"backpressure_decided\": " << bp_decided << ",\n"
       << "  \"target\": \">= 100k admits/s sustained; served decisions "
          "bit-identical to offline replay; full queue answers "
          "RETRY_LATER\",\n"
       << "  \"target_met\": " << (target_met ? "true" : "false") << "\n}\n";
  if (std::ofstream f{"BENCH_net.json"}) {
    f << json.str();
    std::printf("[json: BENCH_net.json]\n");
  }

  if (!checksum_match || !backpressure_ok) return 1;
  if (!throughput_met) {
    std::fprintf(stderr, "throughput %.0f admits/s below 100k target\n",
                 admits_per_sec);
    if (o.gate) return 1;
  }
  return 0;
}
