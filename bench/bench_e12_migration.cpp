// E12 — The price (and cost) of partitioning, with the adversary realized.
//
// The paper's adversary may migrate jobs.  Using the Birkhoff–von Neumann
// construction (src/migrating) we *realize* that adversary and measure, per
// normalized load:
//   * acceptance of partitioned first-fit EDF vs. exact partitioned OPT
//     vs. the LP (= best migrating) — the acceptance gap migration buys;
//   * migrations per unit time of the realized migrating schedule on
//     LP-feasible-but-not-partitionable instances — the runtime overhead a
//     migrating scheduler pays for that gap (a partitioned schedule has 0).
// Expected shape: the LP curve dominates; the gap between exact-partitioned
// and LP opens near saturation; migration counts grow with the gap.
#include <algorithm>

#include "bench_common.h"
#include "exact/exact_partition.h"
#include "gen/platform_gen.h"
#include "gen/taskset_gen.h"
#include "lp/feasibility_lp.h"
#include "migrating/bvn_schedule.h"
#include "partition/first_fit.h"
#include "util/stats.h"

namespace hetsched {
namespace {

void run_point(Table& table, double norm_util, std::size_t trials) {
  const Platform platform = geometric_platform(4, 1.5, 6.0);
  std::size_t ff = 0, exact = 0, lp = 0;
  std::vector<double> migrations;          // on all LP-feasible instances
  std::vector<double> migrations_gap;      // on LP-feasible, not partitionable
  Rng rng(0x12E);
  for (std::size_t trial = 0; trial < trials; ++trial) {
    TasksetSpec spec;
    spec.n = 10;
    spec.max_task_utilization = platform.max_speed();
    spec.total_utilization =
        std::min(norm_util * platform.total_speed(),
                 0.35 * 10 * spec.max_task_utilization);
    spec.periods = PeriodSpec::uniform(20, 1000);
    const TaskSet tasks = generate_taskset(rng, spec);

    const bool ff_ok =
        first_fit_accepts(tasks, platform, AdmissionKind::kEdf, 1.0);
    const ExactResult ex = exact_partition(tasks, platform, AdmissionKind::kEdf);
    const bool ex_ok = ex.verdict == ExactVerdict::kFeasible;
    const bool lp_ok = lp_feasible_oracle(tasks, platform);
    ff += ff_ok;
    exact += ex_ok;
    lp += lp_ok;

    if (lp_ok) {
      const auto sched = build_migrating_schedule(tasks, platform);
      if (sched) {
        const auto mig = static_cast<double>(sched->migrations_per_frame());
        migrations.push_back(mig);
        if (!ex_ok) migrations_gap.push_back(mig);
      }
    }
  }
  const auto frac = [&](std::size_t k) {
    return Table::fmt(static_cast<double>(k) / static_cast<double>(trials), 4);
  };
  const Summary mig_all = summarize(migrations);
  const Summary mig_gap = summarize(migrations_gap);
  table.add_row({Table::fmt(norm_util, 2), frac(ff), frac(exact), frac(lp),
                 Table::fmt(mig_all.mean, 2), Table::fmt(mig_gap.mean, 2),
                 Table::fmt_int(static_cast<std::int64_t>(mig_gap.count))});
}

}  // namespace
}  // namespace hetsched

int main() {
  using namespace hetsched;
  bench::print_header(
      "E12", "partitioned vs migrating: acceptance gap and migration cost");
  bench::WallTimer timer;
  Table table({"U/S", "ff-edf", "exact-part", "lp-migrating",
               "mig/frame(all)", "mig/frame(gap)", "gap-instances"});
  for (const double norm : {0.80, 0.90, 0.95, 0.99}) {
    run_point(table, norm, 300);
  }
  bench::print_section("n=10 tasks, m=4 geometric (total speed 6)");
  bench::emit(table, "e12_migration");
  std::printf("\n[E12 done in %.1fs]\n", timer.seconds());
  return 0;
}
