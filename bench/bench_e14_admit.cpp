// E14: tiered constrained-deadline admission — acceptance vs latency.
//
// Replays the deterministic E14 streams (src/admit/sweep.h — the same
// generator `ctest -L sim` simulates) through a warm tiered controller on
// the two-machine unit platform, once per admission test, and reports per
// test:
//   * acceptance ratio over every arrival in the sweep;
//   * per-admit latency (median, p99, p999 ns over every admit() call);
//   * the tier histogram (how many verdicts each tier produced).
//
// Emits BENCH_admit.json (working directory) and enforces the subsystem's
// headline gate:
//   * acceptance: kAuto within 1 percentage point of kQpa (deterministic,
//     enforced in every mode including --quick);
//   * latency: kAuto median admit <= 3x the kBound median (an in-process
//     relative comparison, so it holds on shared runners; skippable with
//     --no-latency-gate for pathological hosts).
// Exit status is nonzero when an enforced gate fails, which is what the CI
// bench-smoke lane asserts.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "admit/admission_test.h"
#include "admit/sweep.h"
#include "online/online_partitioner.h"
#include "util/stats.h"

namespace hetsched {
namespace {

struct TestResult {
  admit::TestKind test = admit::TestKind::kBound;
  std::size_t arrivals = 0;
  std::size_t admitted = 0;
  std::size_t tier_counts[3] = {0, 0, 0};
  double admit_median_ns = 0;
  double admit_p99_ns = 0;
  double admit_p999_ns = 0;
  double acceptance() const {
    return arrivals == 0 ? 0.0
                         : static_cast<double>(admitted) /
                               static_cast<double>(arrivals);
  }
};

TestResult run_test(const std::vector<admit::E14Point>& points,
                    admit::TestKind test, int reps) {
  const Platform platform = admit::e14_platform();
  admit::AdmitConfig cfg;
  cfg.test = test;

  TestResult result;
  result.test = test;
  std::vector<double> admit_ns;

  // Counting pass (once): acceptance and the tier histogram are
  // deterministic, so they come from a single replay.  Timing reps rerun
  // the identical stream and only contribute latency samples.
  for (int rep = 0; rep < reps + 1; ++rep) {
    const bool counting = rep == 0;
    for (const admit::E14Point& pt : points) {
      OnlinePartitioner controller(platform, admit::tier0_fold_kind(test),
                                   1.0, PartitionEngine::kAuto, cfg);
      controller.reserve(pt.tasks.size());
      for (const Task& t : pt.tasks) {
        const auto t0 = std::chrono::steady_clock::now();
        const AdmitDecision d = controller.admit(t);
        const auto t1 = std::chrono::steady_clock::now();
        if (!counting) {
          admit_ns.push_back(
              std::chrono::duration<double, std::nano>(t1 - t0).count());
        } else {
          ++result.arrivals;
          if (d.admitted) ++result.admitted;
          ++result.tier_counts[d.tier <= 2 ? d.tier : 2];
        }
      }
    }
  }

  const Summary lat = summarize(admit_ns);
  result.admit_median_ns = lat.p50;
  result.admit_p99_ns = lat.p99;
  result.admit_p999_ns = lat.p999;
  return result;
}

void append_json(std::string& out, const TestResult& r) {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "    {\"test\": \"%s\", \"arrivals\": %zu, \"admitted\": %zu, "
      "\"acceptance\": %.4f, "
      "\"tier0_verdicts\": %zu, \"tier1_verdicts\": %zu, "
      "\"tier2_verdicts\": %zu, "
      "\"admit_median_ns\": %.0f, \"admit_p99_ns\": %.0f, "
      "\"admit_p999_ns\": %.0f}",
      admit::to_string(r.test).c_str(), r.arrivals, r.admitted,
      r.acceptance(), r.tier_counts[0], r.tier_counts[1], r.tier_counts[2],
      r.admit_median_ns, r.admit_p99_ns, r.admit_p999_ns);
  out += buf;
}

}  // namespace
}  // namespace hetsched

int main(int argc, char** argv) {
  using namespace hetsched;
  bool quick = false;
  bool latency_gate = true;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    if (std::strcmp(argv[i], "--no-latency-gate") == 0) latency_gate = false;
  }
  const int reps = quick ? 2 : 8;

  const std::vector<admit::E14Point> points = admit::e14_points(quick);
  std::size_t arrivals = 0;
  for (const admit::E14Point& pt : points) arrivals += pt.tasks.size();
  std::printf("E14: tiered constrained-deadline admission "
              "(%zu streams, %zu arrivals, %d timing reps, 2 unit machines)\n",
              points.size(), arrivals, reps);
  std::printf("%-10s %8s %8s %6s %6s %6s %12s %12s %13s\n", "test",
              "arrive", "admit", "tier0", "tier1", "tier2", "admit50(ns)",
              "admit99(ns)", "admit999(ns)");

  const std::vector<admit::TestKind> tests = {
      admit::TestKind::kBound, admit::TestKind::kDbfApprox,
      admit::TestKind::kQpa, admit::TestKind::kRta, admit::TestKind::kAuto,
  };
  std::vector<TestResult> results;
  std::string json = "{\n  \"benchmark\": \"e14_admit\",\n  \"quick\": " +
                     std::string(quick ? "true" : "false") +
                     ",\n  \"tests\": [\n";
  for (std::size_t i = 0; i < tests.size(); ++i) {
    const TestResult r = run_test(points, tests[i], reps);
    std::printf("%-10s %8zu %8zu %6zu %6zu %6zu %12.0f %12.0f %13.0f\n",
                admit::to_string(r.test).c_str(), r.arrivals, r.admitted,
                r.tier_counts[0], r.tier_counts[1], r.tier_counts[2],
                r.admit_median_ns, r.admit_p99_ns, r.admit_p999_ns);
    if (i != 0) json += ",\n";
    append_json(json, r);
    results.push_back(r);
  }

  const TestResult* bound = nullptr;
  const TestResult* qpa = nullptr;
  const TestResult* autor = nullptr;
  for (const TestResult& r : results) {
    if (r.test == admit::TestKind::kBound) bound = &r;
    if (r.test == admit::TestKind::kQpa) qpa = &r;
    if (r.test == admit::TestKind::kAuto) autor = &r;
  }
  const double acceptance_gap = qpa->acceptance() - autor->acceptance();
  const double latency_ratio =
      bound->admit_median_ns <= 0.0
          ? 0.0
          : autor->admit_median_ns / bound->admit_median_ns;
  const bool acceptance_ok = acceptance_gap <= 0.01;
  const bool latency_ok = latency_ratio <= 3.0;

  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "\n  ],\n  \"gate\": {\"acceptance_gap_vs_qpa\": %.4f, "
                "\"acceptance_ok\": %s, \"latency_ratio_vs_bound\": %.2f, "
                "\"latency_ok\": %s}\n}\n",
                acceptance_gap, acceptance_ok ? "true" : "false",
                latency_ratio, latency_ok ? "true" : "false");
  json += buf;

  const char* path = "BENCH_admit.json";
  if (std::FILE* f = std::fopen(path, "w")) {
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    std::printf("[json: %s]\n", path);
  }

  std::printf("gate: auto acceptance gap vs qpa = %.4f (<= 0.0100), "
              "auto/bound median latency = %.2fx (<= 3.00x%s)\n",
              acceptance_gap, latency_ratio,
              latency_gate ? "" : ", not enforced");
  int rc = 0;
  if (!acceptance_ok) {
    std::printf("GATE FAILED: auto acceptance more than 1pp below qpa\n");
    rc = 1;
  }
  if (latency_gate && !latency_ok) {
    std::printf("GATE FAILED: auto median admit latency above 3x bound\n");
    rc = 1;
  }
  return rc;
}
