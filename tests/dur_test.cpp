// Tests for the durability plane: WAL framing and torn-tail truncation,
// snapshot files with corrupt-newest fallback, controller snapshot
// round-trips under churn (both engines), crash recovery via
// recover_shard_set — including a fork+SIGKILL crash whose recovered
// state is checked bit-exactly against a twin replay — and the live
// split/merge resize protocol.  `ctest -L dur` is the CI gate.
#include <gtest/gtest.h>

#include <fcntl.h>
#include <signal.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "gen/churn_gen.h"
#include "gen/platform_gen.h"
#include "io/snapshot_format.h"
#include "io/wal.h"
#include "net/client.h"
#include "net/protocol.h"
#include "net/server.h"
#include "net/shard_store.h"
#include "net/trace_replay.h"
#include "online/online_partitioner.h"
#include "util/rng.h"

namespace hetsched::net {
namespace {

// Fresh directory under the test's cwd (the build tree), removed on
// destruction — WAL/snapshot files never leak between tests or runs.
class TempDir {
 public:
  explicit TempDir(const std::string& tag)
      : path_(tag + "-" + std::to_string(::getpid())) {
    std::filesystem::remove_all(path_);
    EXPECT_TRUE(io::ensure_dir(path_));
  }
  ~TempDir() { std::filesystem::remove_all(path_); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

std::string loopback_addr(const Server& server) {
  return "127.0.0.1:" + std::to_string(server.port());
}

ChurnTrace make_trace(std::uint64_t seed, std::size_t arrivals) {
  Rng rng(seed);
  ChurnSpec spec;
  spec.arrivals = arrivals;
  return generate_churn_trace(rng, spec);
}

// Applies a churn trace to a controller the way the server does: admit on
// arrival (remembering the id), depart on departure of an admitted task.
void apply_trace(OnlinePartitioner& c, const ChurnTrace& trace) {
  std::vector<OnlineTaskId> ids(trace.arrivals, kInvalidOnlineTaskId);
  for (const ChurnEvent& ev : trace.events) {
    if (ev.kind == ChurnEvent::Kind::kArrival) {
      const AdmitDecision d = c.admit(ev.params);
      if (d.admitted) ids[ev.task] = d.id;
    } else if (ids[ev.task] != kInvalidOnlineTaskId) {
      c.depart(ids[ev.task]);
    }
  }
}

// ---------------------------------------------------------------------
// WAL framing
// ---------------------------------------------------------------------

TEST(Wal, RoundTripsEveryRecordType) {
  TempDir dir("durtest-wal-rt");
  const std::string path = io::wal_path(dir.path(), 0);

  io::WalWriter w;
  ASSERT_TRUE(w.open(path, /*epoch=*/3, io::WalSync::kOff));
  w.append_admit(5, 20, 1, 0x1111);
  w.append_depart(42, 2, 0x2222);
  w.append_rebalance(3, 0x3333);
  const io::WalMovedTask moved[] = {{7, 1, 9, 30}, {8, 2, 4, 50}};
  w.append_move(io::WalRecordType::kMoveOut, /*peer=*/5,
                io::kWalFlagDeactivate, moved, 5, 0x4444);
  w.append_move(io::WalRecordType::kMoveIn, /*peer=*/0, 0, {}, 6, 0x5555);
  ASSERT_TRUE(w.commit(/*force_sync=*/true));
  EXPECT_EQ(w.records_appended(), 5u);
  w.close();

  std::vector<io::WalRecord> recs;
  std::uint64_t truncated = ~0ULL;
  std::string err;
  ASSERT_TRUE(io::wal_load(path, &recs, &truncated, &err)) << err;
  EXPECT_EQ(truncated, 0u);
  ASSERT_EQ(recs.size(), 5u);

  EXPECT_EQ(recs[0].type, io::WalRecordType::kAdmit);
  EXPECT_EQ(recs[0].epoch, 3u);
  EXPECT_EQ(recs[0].exec, 5);
  EXPECT_EQ(recs[0].period, 20);
  EXPECT_EQ(recs[0].seq, 1u);
  EXPECT_EQ(recs[0].checksum, 0x1111u);

  EXPECT_EQ(recs[1].type, io::WalRecordType::kDepart);
  EXPECT_EQ(recs[1].task_id, 42u);

  EXPECT_EQ(recs[2].type, io::WalRecordType::kRebalance);
  EXPECT_EQ(recs[2].seq, 3u);

  EXPECT_EQ(recs[3].type, io::WalRecordType::kMoveOut);
  EXPECT_EQ(recs[3].flags, io::kWalFlagDeactivate);
  EXPECT_EQ(recs[3].peer, 5u);
  ASSERT_EQ(recs[3].moved.size(), 2u);
  EXPECT_EQ(recs[3].moved[0].old_id, 7u);
  EXPECT_EQ(recs[3].moved[0].new_id, 1u);
  EXPECT_EQ(recs[3].moved[1].exec, 4);
  EXPECT_EQ(recs[3].moved[1].period, 50);

  EXPECT_EQ(recs[4].type, io::WalRecordType::kMoveIn);
  EXPECT_TRUE(recs[4].moved.empty());
}

TEST(Wal, TornTailIsTruncatedInPlace) {
  TempDir dir("durtest-wal-torn");
  const std::string path = io::wal_path(dir.path(), 0);

  io::WalWriter w;
  ASSERT_TRUE(w.open(path, 1, io::WalSync::kOff));
  for (int i = 0; i < 10; ++i) {
    w.append_admit(i + 1, 100, static_cast<std::uint64_t>(i + 1),
                   static_cast<std::uint64_t>(7 * i));
  }
  ASSERT_TRUE(w.commit());
  w.close();

  // A crash mid-write leaves a partial frame: half a header plus garbage.
  {
    const int fd = ::open(path.c_str(), O_WRONLY | O_APPEND);
    ASSERT_GE(fd, 0);
    const unsigned char tear[] = {0x20, 0x00, 0x00, 0x00, 0xAB, 0xCD};
    ASSERT_EQ(::write(fd, tear, sizeof tear),
              static_cast<ssize_t>(sizeof tear));
    ::close(fd);
  }

  std::vector<io::WalRecord> recs;
  std::uint64_t truncated = 0;
  std::string err;
  ASSERT_TRUE(io::wal_load(path, &recs, &truncated, &err)) << err;
  EXPECT_EQ(recs.size(), 10u);
  EXPECT_EQ(truncated, 6u);

  // The load repaired the file: a second load sees a clean log.
  recs.clear();
  ASSERT_TRUE(io::wal_load(path, &recs, &truncated, &err)) << err;
  EXPECT_EQ(recs.size(), 10u);
  EXPECT_EQ(truncated, 0u);
}

TEST(Wal, CorruptTailRecordIsDiscarded) {
  TempDir dir("durtest-wal-crc");
  const std::string path = io::wal_path(dir.path(), 0);

  io::WalWriter w;
  ASSERT_TRUE(w.open(path, 1, io::WalSync::kOff));
  w.append_admit(1, 10, 1, 1);
  w.append_admit(2, 10, 2, 2);
  ASSERT_TRUE(w.commit());
  w.close();

  // Flip one byte in the last record's payload: CRC must catch it.
  {
    const int fd = ::open(path.c_str(), O_RDWR);
    ASSERT_GE(fd, 0);
    const off_t size = ::lseek(fd, 0, SEEK_END);
    ASSERT_GT(size, 0);
    unsigned char b = 0;
    ASSERT_EQ(::pread(fd, &b, 1, size - 3), 1);
    b ^= 0xFF;
    ASSERT_EQ(::pwrite(fd, &b, 1, size - 3), 1);
    ::close(fd);
  }

  std::vector<io::WalRecord> recs;
  std::uint64_t truncated = 0;
  std::string err;
  ASSERT_TRUE(io::wal_load(path, &recs, &truncated, &err)) << err;
  ASSERT_EQ(recs.size(), 1u);
  EXPECT_EQ(recs[0].seq, 1u);
  EXPECT_GT(truncated, 0u);
}

TEST(Wal, MissingFileIsAnEmptyLog) {
  std::vector<io::WalRecord> recs;
  std::uint64_t truncated = 9;
  std::string err;
  ASSERT_TRUE(io::wal_load("durtest-no-such-dir/shard-000.wal", &recs,
                           &truncated, &err))
      << err;
  EXPECT_TRUE(recs.empty());
  EXPECT_EQ(truncated, 0u);
}

TEST(Wal, TruncateRestartEmptiesAndRestamps) {
  TempDir dir("durtest-wal-rot");
  const std::string path = io::wal_path(dir.path(), 0);

  io::WalWriter w;
  ASSERT_TRUE(w.open(path, 1, io::WalSync::kOff));
  w.append_admit(1, 10, 1, 1);
  ASSERT_TRUE(w.commit());
  ASSERT_TRUE(w.truncate_restart(/*epoch=*/2));
  w.append_depart(1, 2, 2);
  ASSERT_TRUE(w.commit());
  w.close();

  std::vector<io::WalRecord> recs;
  std::string err;
  ASSERT_TRUE(io::wal_load(path, &recs, nullptr, &err)) << err;
  ASSERT_EQ(recs.size(), 1u);
  EXPECT_EQ(recs[0].type, io::WalRecordType::kDepart);
  EXPECT_EQ(recs[0].epoch, 2u);
}

// ---------------------------------------------------------------------
// snapshot files
// ---------------------------------------------------------------------

TEST(SnapshotFile, RoundTripsMetaAndPayload) {
  TempDir dir("durtest-snap-rt");

  io::SnapshotFileMeta meta;
  meta.shard = 7;
  meta.epoch = 2;
  meta.decision_seq = 123;
  meta.decision_checksum = 0xFEEDFACE;
  meta.active = false;
  meta.forwards = {{11, 1, 5}, {12, 3, 0}};
  const std::vector<std::uint8_t> payload = {1, 2, 3, 4, 5};

  std::string err;
  const std::string path =
      io::write_snapshot_file(dir.path(), meta, payload, /*keep=*/2,
                              /*durable=*/true, &err);
  ASSERT_FALSE(path.empty()) << err;

  io::SnapshotFileMeta got;
  std::vector<std::uint8_t> got_payload;
  ASSERT_TRUE(io::read_snapshot_file(path, &got, &got_payload, &err)) << err;
  EXPECT_EQ(got.shard, 7u);
  EXPECT_EQ(got.epoch, 2u);
  EXPECT_EQ(got.decision_seq, 123u);
  EXPECT_EQ(got.decision_checksum, 0xFEEDFACEu);
  EXPECT_FALSE(got.active);
  ASSERT_EQ(got.forwards.size(), 2u);
  EXPECT_EQ(got.forwards[0].old_id, 11u);
  EXPECT_EQ(got.forwards[0].peer_shard, 1u);
  EXPECT_EQ(got.forwards[1].new_id, 0u);
  EXPECT_EQ(got_payload, payload);
}

TEST(SnapshotFile, NewestFirstListingAndPruning) {
  TempDir dir("durtest-snap-list");
  io::SnapshotFileMeta meta;
  meta.shard = 0;
  std::string err;
  for (std::uint64_t seq : {10u, 30u, 20u}) {
    meta.decision_seq = seq;
    ASSERT_FALSE(
        io::write_snapshot_file(dir.path(), meta, {}, /*keep=*/2,
                                /*durable=*/true, &err)
            .empty())
        << err;
  }
  // keep=2 pruned down to the two newest after the last write.
  const std::vector<std::string> snaps = io::list_snapshots(dir.path(), 0);
  ASSERT_EQ(snaps.size(), 2u);
  EXPECT_EQ(snaps[0], io::snapshot_path(dir.path(), 0, 30));
  EXPECT_EQ(snaps[1], io::snapshot_path(dir.path(), 0, 20));
}

TEST(SnapshotFile, CorruptFileFailsValidationCleanly) {
  TempDir dir("durtest-snap-bad");
  io::SnapshotFileMeta meta;
  meta.decision_seq = 5;
  std::string err;
  const std::string path = io::write_snapshot_file(
      dir.path(), meta, std::vector<std::uint8_t>(64, 0xAA), 2,
      /*durable=*/false, &err);
  ASSERT_FALSE(path.empty()) << err;

  const int fd = ::open(path.c_str(), O_RDWR);
  ASSERT_GE(fd, 0);
  unsigned char b = 0;
  ASSERT_EQ(::pread(fd, &b, 1, 40), 1);
  b ^= 0x01;
  ASSERT_EQ(::pwrite(fd, &b, 1, 40), 1);
  ::close(fd);

  io::SnapshotFileMeta got;
  std::vector<std::uint8_t> payload;
  EXPECT_FALSE(io::read_snapshot_file(path, &got, &payload, &err));
}

TEST(SnapshotFile, DiscoverShardCountSpansWalsAndSnapshots) {
  TempDir dir("durtest-discover");
  EXPECT_EQ(io::discover_shard_count(dir.path()), 0u);
  EXPECT_EQ(io::discover_shard_count("durtest-no-such-dir"), 0u);

  io::WalWriter w;
  ASSERT_TRUE(w.open(io::wal_path(dir.path(), 2), 1, io::WalSync::kOff));
  w.close();
  io::SnapshotFileMeta meta;
  meta.shard = 4;
  std::string err;
  ASSERT_FALSE(
      io::write_snapshot_file(dir.path(), meta, {}, 2, /*durable=*/true, &err)
          .empty());
  EXPECT_EQ(io::discover_shard_count(dir.path()), 5u);
}

// ---------------------------------------------------------------------
// controller snapshot round-trips (both engines)
// ---------------------------------------------------------------------

class SnapshotChurn : public ::testing::TestWithParam<PartitionEngine> {};

// A controller serialized mid-churn and restored into a fresh instance
// stays on the same decision stream through another thousand operations —
// seq and checksum compared after every event.
TEST_P(SnapshotChurn, RestoredTwinTracksBitExactlyUnderMoreChurn) {
  const Platform pf = geometric_platform(4, 1.5);
  OnlinePartitioner a(pf, AdmissionKind::kEdf, 1.0, GetParam());
  apply_trace(a, make_trace(101, 400));

  const std::vector<std::uint8_t> bytes = a.serialize_snapshot();
  OnlinePartitioner b(pf, AdmissionKind::kEdf, 1.0, GetParam());
  ASSERT_TRUE(b.restore_bytes(bytes.data(), bytes.size()));
  ASSERT_EQ(b.decision_seq(), a.decision_seq());
  ASSERT_EQ(b.decision_checksum(), a.decision_checksum());

  const ChurnTrace more = make_trace(202, 500);
  std::vector<OnlineTaskId> ids_a(more.arrivals, kInvalidOnlineTaskId);
  std::vector<OnlineTaskId> ids_b(more.arrivals, kInvalidOnlineTaskId);
  for (const ChurnEvent& ev : more.events) {
    if (ev.kind == ChurnEvent::Kind::kArrival) {
      const AdmitDecision da = a.admit(ev.params);
      const AdmitDecision db = b.admit(ev.params);
      ASSERT_EQ(da.admitted, db.admitted);
      ASSERT_EQ(da.id, db.id);
      ASSERT_EQ(da.machine, db.machine);
      if (da.admitted) {
        ids_a[ev.task] = da.id;
        ids_b[ev.task] = db.id;
      }
    } else if (ids_a[ev.task] != kInvalidOnlineTaskId) {
      ASSERT_EQ(a.depart(ids_a[ev.task]), b.depart(ids_b[ev.task]));
    }
    ASSERT_EQ(a.decision_seq(), b.decision_seq());
    ASSERT_EQ(a.decision_checksum(), b.decision_checksum());
  }
}

INSTANTIATE_TEST_SUITE_P(Engines, SnapshotChurn,
                         ::testing::Values(PartitionEngine::kNaive,
                                           PartitionEngine::kSegmentTree),
                         [](const auto& pinfo) {
                           return pinfo.param == PartitionEngine::kNaive
                                      ? "Naive"
                                      : "SegmentTree";
                         });

TEST(SnapshotChurn, RestoreRejectsMachineCountMismatch) {
  OnlinePartitioner four(geometric_platform(4, 1.5), AdmissionKind::kEdf,
                         1.0);
  apply_trace(four, make_trace(5, 50));
  const OnlinePartitioner::Snapshot snap = four.snapshot();

  OnlinePartitioner three(geometric_platform(3, 1.5), AdmissionKind::kEdf,
                          1.0);
  const std::uint64_t seq_before = three.decision_seq();
  EXPECT_FALSE(three.restore(snap));
  EXPECT_EQ(three.decision_seq(), seq_before);  // rejected, untouched

  const std::vector<std::uint8_t> bytes = four.serialize_snapshot();
  EXPECT_FALSE(three.restore_bytes(bytes.data(), bytes.size()));
}

TEST(SnapshotChurn, RestoreBytesRejectsCorruptPayload) {
  const Platform pf = geometric_platform(4, 1.5);
  OnlinePartitioner a(pf, AdmissionKind::kEdf, 1.0);
  apply_trace(a, make_trace(6, 80));

  std::vector<std::uint8_t> bytes = a.serialize_snapshot();
  ASSERT_GT(bytes.size(), 16u);

  OnlinePartitioner b(pf, AdmissionKind::kEdf, 1.0);
  EXPECT_FALSE(b.restore_bytes(bytes.data(), bytes.size() - 1));  // short
  EXPECT_FALSE(b.restore_bytes(bytes.data(), 7));  // truncated header

  bytes[0] ^= 0x80;  // broken magic
  EXPECT_FALSE(b.restore_bytes(bytes.data(), bytes.size()));
  bytes[0] ^= 0x80;
  bytes[8] ^= 0x01;  // wrong admission kind
  EXPECT_FALSE(b.restore_bytes(bytes.data(), bytes.size()));

  // A rejected restore leaves the controller on its own stream.
  EXPECT_EQ(b.decision_seq(), 0u);
}

// ---------------------------------------------------------------------
// resize protocol frames
// ---------------------------------------------------------------------

TEST(DurProtocol, ResizeRequestsRoundTrip) {
  const Request cases[] = {
      Request::split(3, 90),
      Request::merge(5, 2, 91),
  };
  for (const Request& r : cases) {
    unsigned char buf[kFrameSize];
    ASSERT_EQ(encode_request(r, buf), kFrameSize);
    Request out;
    std::size_t consumed = 0;
    ASSERT_EQ(decode_request(buf, kFrameSize, &out, &consumed),
              DecodeResult::kOk);
    EXPECT_EQ(out.type, r.type);
    EXPECT_EQ(out.shard, r.shard);
    EXPECT_EQ(out.request_id, r.request_id);
    EXPECT_EQ(out.a, r.a);
  }
  EXPECT_EQ(Request::merge(5, 2, 91).merge_target(), 2u);
}

TEST(DurProtocol, ResizeStatusesRoundTrip) {
  for (const Status st : {Status::kResized, Status::kResizeFailed}) {
    Response r;
    r.type = MsgType::kSplitShard;
    r.status = st;
    r.machine = 2;       // target shard
    r.task_id = 17;      // tenants migrated
    r.request_id = 1234;
    unsigned char buf[kFrameSize];
    ASSERT_EQ(encode_response(r, buf), kFrameSize);
    Response out;
    std::size_t consumed = 0;
    ASSERT_EQ(decode_response(buf, kFrameSize, &out, &consumed),
              DecodeResult::kOk);
    EXPECT_EQ(out.status, st);
    EXPECT_EQ(out.machine, 2u);
    EXPECT_EQ(out.task_id, 17u);
  }
}

// ---------------------------------------------------------------------
// live split / merge
// ---------------------------------------------------------------------

TEST(Resize, SplitMovesTenantsAndForwardsDeparts) {
  const Platform pf = geometric_platform(4, 1.5);
  ServerOptions opts;
  opts.shards = 1;
  Server server(pf, opts);
  std::string err;
  ASSERT_TRUE(server.start(&err)) << err;

  Client client;
  ASSERT_TRUE(client.connect(loopback_addr(server), 2000, &err)) << err;

  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 12; ++i) {
    Response r;
    ASSERT_TRUE(client.call(Request::admit(0, 100u + static_cast<unsigned>(i), 1, 50), &r, 2000));
    ASSERT_EQ(r.status, Status::kAdmitted);
    ids.push_back(r.task_id);
  }

  Response r;
  ASSERT_TRUE(client.call(Request::split(0, 200), &r, 2000));
  ASSERT_EQ(r.status, Status::kResized);
  EXPECT_EQ(r.machine, 1u);     // the new shard's index
  EXPECT_EQ(r.task_id, 6u);     // half the tenants moved
  EXPECT_EQ(server.shard_count(), 2u);

  // Every pre-split id still departs through shard 0: moved tenants are
  // forwarded to the new shard, the rest depart locally.
  for (std::uint64_t id : ids) {
    ASSERT_TRUE(client.call(Request::depart(0, 300, id), &r, 2000));
    EXPECT_EQ(r.status, Status::kDeparted) << "task " << id;
  }
  server.request_stop();
  server.wait();
  const ServerStats s = server.stats();
  EXPECT_EQ(s.resizes, 1u);
  EXPECT_EQ(s.forwarded, 6u);
  EXPECT_EQ(s.departed, 12u);
}

TEST(Resize, MergeRetiresSourceShard) {
  const Platform pf = geometric_platform(4, 1.5);
  ServerOptions opts;
  opts.shards = 2;
  Server server(pf, opts);
  std::string err;
  ASSERT_TRUE(server.start(&err)) << err;
  Client client;
  ASSERT_TRUE(client.connect(loopback_addr(server), 2000, &err)) << err;

  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 5; ++i) {
    Response r;
    ASSERT_TRUE(client.call(Request::admit(1, 100u + static_cast<unsigned>(i), 1, 40), &r, 2000));
    ASSERT_EQ(r.status, Status::kAdmitted);
    ids.push_back(r.task_id);
  }

  Response r;
  ASSERT_TRUE(client.call(Request::merge(1, 0, 200), &r, 2000));
  ASSERT_EQ(r.status, Status::kResized);
  EXPECT_EQ(r.machine, 0u);
  EXPECT_EQ(r.task_id, 5u);

  // The retired shard rejects new admits but still forwards departs.
  ASSERT_TRUE(client.call(Request::admit(1, 300, 1, 40), &r, 2000));
  EXPECT_EQ(r.status, Status::kBadShard);
  for (std::uint64_t id : ids) {
    ASSERT_TRUE(client.call(Request::depart(1, 400, id), &r, 2000));
    EXPECT_EQ(r.status, Status::kDeparted);
  }

  // Self-merge and out-of-range targets are rejected without mutation.
  ASSERT_TRUE(client.call(Request::merge(0, 0, 500), &r, 2000));
  EXPECT_EQ(r.status, Status::kBadShard);
  ASSERT_TRUE(client.call(Request::merge(0, 9, 501), &r, 2000));
  EXPECT_EQ(r.status, Status::kBadShard);

  server.request_stop();
  server.wait();
  EXPECT_FALSE(server.shard_active(1));
  EXPECT_TRUE(server.shard_active(0));
  EXPECT_EQ(server.stats().resizes, 1u);
}

// ---------------------------------------------------------------------
// recovery
// ---------------------------------------------------------------------

// Served churn + a split + a merge, graceful stop, then recover_shard_set
// into fresh controllers: every shard's (seq, checksum, active) must equal
// the live server's final state — through mid-run snapshots (tiny
// snapshot_every) AND WAL tail replay.
TEST(Recovery, GracefulStopRecoversBitExactState) {
  TempDir dir("durtest-graceful");
  const Platform pf = geometric_platform(4, 1.5);

  ServerOptions opts;
  opts.shards = 2;
  opts.wal_dir = dir.path();
  opts.wal_sync = io::WalSync::kOff;  // durability knob, not a format knob
  opts.snapshot_every = 16;           // force mid-run snapshot + tail replay
  Server server(pf, opts);
  std::string err;
  ASSERT_TRUE(server.start(&err)) << err;

  Client client;
  ASSERT_TRUE(client.connect(loopback_addr(server), 2000, &err)) << err;
  const ChurnTrace traces[2] = {make_trace(31, 120), make_trace(32, 120)};
  for (int sidx = 0; sidx < 2; ++sidx) {
    const ReplaySummary sum = replay_trace_over_client(
        client, traces[sidx], static_cast<std::uint16_t>(sidx), 32, 5000);
    ASSERT_TRUE(sum.ok) << client.last_error();
  }
  Response r;
  ASSERT_TRUE(client.call(Request::split(0, 900), &r, 5000));
  ASSERT_EQ(r.status, Status::kResized);
  ASSERT_TRUE(client.call(Request::merge(1, 2, 901), &r, 5000));
  ASSERT_EQ(r.status, Status::kResized);
  // More traffic after the resizes so the WAL tail crosses them.
  const ReplaySummary tail =
      replay_trace_over_client(client, make_trace(33, 60), 0, 32, 5000);
  ASSERT_TRUE(tail.ok) << client.last_error();

  server.request_stop();
  server.wait();
  const std::size_t n = server.shard_count();
  ASSERT_EQ(n, 3u);

  std::vector<std::unique_ptr<OnlinePartitioner>> fresh;
  std::vector<OnlinePartitioner*> ptrs;
  for (std::size_t i = 0; i < n; ++i) {
    fresh.push_back(std::make_unique<OnlinePartitioner>(
        pf, AdmissionKind::kEdf, 1.0));
    ptrs.push_back(fresh.back().get());
  }
  const ShardSetRecovery rec =
      recover_shard_set(dir.path(), ptrs, /*rotate=*/false,
                        io::WalSync::kOff);
  ASSERT_TRUE(rec.ok) << rec.error;
  ASSERT_EQ(rec.shards.size(), n);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(fresh[i]->decision_seq(), server.shard_decision_seq(i))
        << "shard " << i;
    EXPECT_EQ(fresh[i]->decision_checksum(),
              server.shard_decision_checksum(i))
        << "shard " << i;
    EXPECT_EQ(rec.shards[i].active, server.shard_active(i)) << "shard " << i;
    EXPECT_EQ(fresh[i]->resident_count(), server.shard_resident_count(i))
        << "shard " << i;
  }
  // Mid-run snapshots actually happened: some shard recovered from a
  // non-zero cut instead of replaying from the beginning of time.
  bool any_snapshot_base = false;
  for (const ShardRecoveryInfo& info : rec.shards) {
    if (info.snapshot_seq > 0) any_snapshot_base = true;
  }
  EXPECT_TRUE(any_snapshot_base);
}

// A server re-start over the same --wal-dir adopts the recovered state:
// the same ids keep departing, the split-grown shard count persists.
TEST(Recovery, RestartAdoptsRecoveredShards) {
  TempDir dir("durtest-restart");
  const Platform pf = geometric_platform(4, 1.5);
  ServerOptions opts;
  opts.shards = 1;
  opts.wal_dir = dir.path();
  opts.wal_sync = io::WalSync::kOff;

  std::vector<std::uint64_t> ids;
  {
    Server server(pf, opts);
    std::string err;
    ASSERT_TRUE(server.start(&err)) << err;
    Client client;
    ASSERT_TRUE(client.connect(loopback_addr(server), 2000, &err)) << err;
    Response r;
    for (int i = 0; i < 8; ++i) {
      ASSERT_TRUE(client.call(Request::admit(0, 10u + static_cast<unsigned>(i), 1, 30), &r, 2000));
      ASSERT_EQ(r.status, Status::kAdmitted);
      ids.push_back(r.task_id);
    }
    ASSERT_TRUE(client.call(Request::split(0, 50), &r, 2000));
    ASSERT_EQ(r.status, Status::kResized);
    server.request_stop();
    server.wait();
  }

  Server server(pf, opts);  // options still say 1 shard...
  std::string err;
  ASSERT_TRUE(server.start(&err)) << err;
  EXPECT_EQ(server.shard_count(), 2u);  // ...the directory says 2
  EXPECT_GT(server.stats().recovered, 0u);
  Client client;
  ASSERT_TRUE(client.connect(loopback_addr(server), 2000, &err)) << err;
  Response r;
  for (std::uint64_t id : ids) {
    ASSERT_TRUE(client.call(Request::depart(0, 60, id), &r, 2000));
    EXPECT_EQ(r.status, Status::kDeparted) << "task " << id;
  }
  server.request_stop();
  server.wait();
}

// The crash test: a forked child serves with a WAL, the parent drives a
// known op stream over loopback and SIGKILLs the child mid-churn.  The
// recovered controller must sit exactly at some prefix of that stream —
// at least every acknowledged op (WAL-before-reply) — and a twin replay
// of that prefix must reproduce seq, checksum, and the resident set
// bit-exactly: no lost acks, no double admits.
TEST(Recovery, KillNineRecoversAcknowledgedPrefixBitExactly) {
  TempDir dir("durtest-kill9");
  const Platform pf = geometric_platform(4, 1.5);

  int pipefd[2];
  ASSERT_EQ(::pipe(pipefd), 0);
  const pid_t child = ::fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    // Child: serve until killed.  _exit on any failure — no gtest teardown.
    ::close(pipefd[0]);
    ServerOptions opts;
    opts.shards = 1;
    opts.wal_dir = dir.path();
    opts.wal_sync = io::WalSync::kBatch;
    opts.snapshot_every = 64;
    Server server(pf, opts);
    std::string err;
    if (!server.start(&err)) ::_exit(2);
    const std::uint16_t port = static_cast<std::uint16_t>(server.port());
    if (::write(pipefd[1], &port, sizeof port) != sizeof port) ::_exit(3);
    ::close(pipefd[1]);
    for (;;) ::pause();
  }
  ::close(pipefd[1]);
  std::uint16_t port = 0;
  ASSERT_EQ(::read(pipefd[0], &port, sizeof port),
            static_cast<ssize_t>(sizeof port));
  ::close(pipefd[0]);

  // The op stream, known to the parent: admits with varied params and
  // departs of earlier acks.  One connection, one shard — the processing
  // order is the send order, so the recovered state must be a prefix.
  struct Op {
    bool is_admit;
    std::int64_t exec, period;  // admit
    std::uint64_t depart_ix;    // index into acked admit ids
  };
  std::vector<Op> ops;
  Rng rng(0xD00D);
  for (int i = 0; i < 400; ++i) {
    if (i >= 10 && rng.next_u64() % 3 == 0) {
      ops.push_back({false, 0, 0, rng.next_u64() %
                                      static_cast<std::uint64_t>(i * 3 / 4)});
    } else {
      const std::int64_t period =
          10 + static_cast<std::int64_t>(rng.next_u64() % 90);
      const std::int64_t exec =
          1 + static_cast<std::int64_t>(rng.next_u64() %
                                        static_cast<std::uint64_t>(period / 2));
      ops.push_back({true, exec, period, 0});
    }
  }

  Client client;
  std::string err;
  ASSERT_TRUE(client.connect("127.0.0.1:" + std::to_string(port), 5000,
                             &err))
      << err;
  std::vector<std::uint64_t> admit_ids;  // id per acked admit, in order
  std::size_t acked = 0;
  for (const Op& op : ops) {
    Response r;
    const Request req =
        op.is_admit
            ? Request::admit(0, acked, op.exec, op.period)
            : Request::depart(
                  0, acked,
                  admit_ids[op.depart_ix % std::max<std::size_t>(
                                               1, admit_ids.size())]);
    if (!client.call(req, &r, 5000)) break;  // killed under us — fine
    ++acked;
    if (op.is_admit && r.status == Status::kAdmitted) {
      admit_ids.push_back(r.task_id);
    } else if (op.is_admit) {
      admit_ids.push_back(kInvalidOnlineTaskId);  // keep indices aligned
    }
    if (acked == 250) ::kill(child, SIGKILL);  // mid-churn, no drain
  }
  ::kill(child, SIGKILL);
  int wstatus = 0;
  ASSERT_EQ(::waitpid(child, &wstatus, 0), child);
  ASSERT_GE(acked, 250u);

  // Recover.  recover_shard_set asserts per-record (seq, checksum) parity
  // internally; ok=true already proves the replay was bit-exact.
  OnlinePartitioner recovered(pf, AdmissionKind::kEdf, 1.0);
  OnlinePartitioner* ptr = &recovered;
  const ShardSetRecovery rec = recover_shard_set(
      dir.path(), std::span<OnlinePartitioner* const>(&ptr, 1),
      /*rotate=*/false, io::WalSync::kOff);
  ASSERT_TRUE(rec.ok) << rec.error;

  // WAL-before-reply: nothing acknowledged may be lost.
  const std::uint64_t n = recovered.decision_seq();
  ASSERT_GE(n, acked);
  ASSERT_LE(n, ops.size());

  // Twin-replay the first n ops and demand bit-exact agreement.
  OnlinePartitioner twin(pf, AdmissionKind::kEdf, 1.0);
  std::vector<std::uint64_t> twin_ids;
  std::unordered_set<std::uint64_t> live;
  for (std::uint64_t i = 0; i < n; ++i) {
    const Op& op = ops[i];
    if (op.is_admit) {
      const AdmitDecision d = twin.admit(Task{op.exec, op.period});
      twin_ids.push_back(d.admitted ? d.id : kInvalidOnlineTaskId);
      if (d.admitted) live.insert(d.id);
    } else {
      const std::uint64_t id =
          twin_ids[op.depart_ix %
                   std::max<std::size_t>(1, twin_ids.size())];
      if (twin.depart(id)) live.erase(id);
    }
  }
  EXPECT_EQ(recovered.decision_checksum(), twin.decision_checksum());
  EXPECT_EQ(recovered.resident_count(), live.size());
  for (const std::uint64_t id : live) {  // zero double admits, zero losses
    EXPECT_TRUE(recovered.machine_of(id).has_value()) << "task " << id;
    EXPECT_EQ(recovered.machine_of(id), twin.machine_of(id));
  }
}

// A corrupt newest snapshot falls back to the previous one; the WAL tail
// from the older cut replays the difference.
TEST(Recovery, CorruptNewestSnapshotFallsBackToOlder) {
  TempDir dir("durtest-fallback");
  const Platform pf = geometric_platform(4, 1.5);

  {
    ServerOptions opts;
    opts.shards = 1;
    opts.wal_dir = dir.path();
    opts.wal_sync = io::WalSync::kOff;
    opts.snapshot_every = 8;  // several snapshot generations
    Server server(pf, opts);
    std::string err;
    ASSERT_TRUE(server.start(&err)) << err;
    Client client;
    ASSERT_TRUE(client.connect(loopback_addr(server), 2000, &err)) << err;
    const ReplaySummary sum =
        replay_trace_over_client(client, make_trace(77, 100), 0, 16, 5000);
    ASSERT_TRUE(sum.ok) << client.last_error();
    server.request_stop();
    server.wait();
  }

  const std::vector<std::string> snaps = io::list_snapshots(dir.path(), 0);
  ASSERT_GE(snaps.size(), 2u);

  // Recover once, cleanly, to fix the expected end state.
  OnlinePartitioner clean(pf, AdmissionKind::kEdf, 1.0);
  OnlinePartitioner* cptr = &clean;
  ShardSetRecovery rec = recover_shard_set(
      dir.path(), std::span<OnlinePartitioner* const>(&cptr, 1), false,
      io::WalSync::kOff);
  ASSERT_TRUE(rec.ok) << rec.error;

  // Corrupt the newest snapshot's interior.
  {
    const int fd = ::open(snaps[0].c_str(), O_RDWR);
    ASSERT_GE(fd, 0);
    unsigned char b = 0;
    ASSERT_EQ(::pread(fd, &b, 1, 24), 1);
    b ^= 0x5A;
    ASSERT_EQ(::pwrite(fd, &b, 1, 24), 1);
    ::close(fd);
  }

  OnlinePartitioner fallback(pf, AdmissionKind::kEdf, 1.0);
  OnlinePartitioner* fptr = &fallback;
  rec = recover_shard_set(dir.path(),
                          std::span<OnlinePartitioner* const>(&fptr, 1),
                          false, io::WalSync::kOff);
  ASSERT_TRUE(rec.ok) << rec.error;
  EXPECT_GT(rec.shards[0].replayed, 0u);  // older cut -> longer replay
  EXPECT_EQ(fallback.decision_seq(), clean.decision_seq());
  EXPECT_EQ(fallback.decision_checksum(), clean.decision_checksum());
}

}  // namespace
}  // namespace hetsched::net
