// Property tests pinning the analytic tests to the exact simulator.
//
// The simulator and the RTA are both exact (integer releases, rational
// time), so several relationships must hold with no tolerance at all; the
// analytic bound checks run with a one-in-a-million speed margin to absorb
// the double-precision admission arithmetic (documented inline).
#include <gtest/gtest.h>

#include "core/rta.h"
#include "core/uniproc.h"
#include "gen/platform_gen.h"
#include "gen/taskset_gen.h"
#include "partition/first_fit.h"
#include "sim/event_sim.h"
#include "util/rng.h"

namespace hetsched {
namespace {

TaskSet random_sim_friendly_taskset(Rng& rng, std::size_t n, double util) {
  TasksetSpec spec;
  spec.n = n;
  spec.total_utilization = util;
  spec.max_task_utilization = 1.0;
  spec.periods = PeriodSpec::sim_friendly();
  return generate_taskset(rng, spec);
}

class SimPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

// EDF exactness: on one machine, the utilization test and the simulator
// agree exactly (both sides computed in exact arithmetic).
TEST_P(SimPropertyTest, EdfUtilizationTestMatchesSimulation) {
  Rng rng(GetParam());
  for (int iter = 0; iter < 40; ++iter) {
    const TaskSet tasks =
        random_sim_friendly_taskset(rng, 5, rng.uniform(0.5, 1.3));
    const Rational speed(rng.uniform_int(3, 6), 4);  // 3/4 .. 6/4
    const bool bound = tasks.total_utilization_exact() <= speed;
    const SimOutcome sim =
        simulate_uniproc(tasks.tasks(), speed, SchedPolicy::kEdf);
    ASSERT_FALSE(sim.horizon_exhausted);
    EXPECT_EQ(bound, sim.schedulable)
        << tasks.to_string() << " speed=" << speed.to_string();
  }
}

// RTA exactness: response-time analysis and the RM simulation agree exactly.
TEST_P(SimPropertyTest, RtaMatchesRmSimulation) {
  Rng rng(GetParam() ^ 0xA5A5);
  for (int iter = 0; iter < 40; ++iter) {
    const TaskSet tasks =
        random_sim_friendly_taskset(rng, 5, rng.uniform(0.5, 1.2));
    const Rational speed(rng.uniform_int(3, 8), 4);
    const bool rta = rta_schedulable(tasks.tasks(), speed);
    const SimOutcome sim = simulate_uniproc(tasks.tasks(), speed,
                                            SchedPolicy::kFixedPriorityRm);
    ASSERT_FALSE(sim.horizon_exhausted);
    EXPECT_EQ(rta, sim.schedulable)
        << tasks.to_string() << " speed=" << speed.to_string();
  }
}

// Liu–Layland soundness: sets passing the LL bound never miss under RM.
TEST_P(SimPropertyTest, LiuLaylandBoundIsSoundAgainstSimulation) {
  Rng rng(GetParam() ^ 0x1234);
  int passed_bound = 0;
  for (int iter = 0; iter < 60; ++iter) {
    const TaskSet tasks =
        random_sim_friendly_taskset(rng, 4, rng.uniform(0.4, 0.9));
    if (!rms_ll_feasible(tasks.total_utilization(), tasks.size(), 1.0)) {
      continue;
    }
    ++passed_bound;
    const SimOutcome sim = simulate_uniproc(tasks.tasks(), Rational(1),
                                            SchedPolicy::kFixedPriorityRm);
    EXPECT_TRUE(sim.schedulable) << tasks.to_string();
  }
  EXPECT_GT(passed_bound, 10);
}

// Hyperbolic-bound soundness, same shape as above.
TEST_P(SimPropertyTest, HyperbolicBoundIsSoundAgainstSimulation) {
  Rng rng(GetParam() ^ 0x5678);
  int passed_bound = 0;
  for (int iter = 0; iter < 60; ++iter) {
    const TaskSet tasks =
        random_sim_friendly_taskset(rng, 4, rng.uniform(0.5, 1.0));
    std::vector<double> utils;
    for (const Task& t : tasks) utils.push_back(t.utilization());
    if (!rms_hyperbolic_feasible(utils, 1.0)) continue;
    ++passed_bound;
    const SimOutcome sim = simulate_uniproc(tasks.tasks(), Rational(1),
                                            SchedPolicy::kFixedPriorityRm);
    EXPECT_TRUE(sim.schedulable) << tasks.to_string();
  }
  EXPECT_GT(passed_bound, 10);
}

// End-to-end soundness of the paper's test: every accepted partition
// replays without a miss on the alpha-augmented platform.  The simulation
// speed carries a +2^-20 relative margin: admission sums utilizations in
// doubles, so an instance can pass admission while being over capacity by
// ~1e-16; the margin dwarfs that error without affecting the property.
TEST_P(SimPropertyTest, AcceptedPartitionsReplayWithoutMisses) {
  Rng rng(GetParam() ^ 0x9999);
  const Rational margin(1 + (1 << 20), 1 << 20);
  int accepted = 0;
  for (int iter = 0; iter < 30; ++iter) {
    const Platform platform = big_little_platform(2, 2, 1.0, 2.0);
    TasksetSpec spec;
    spec.n = 8;
    spec.total_utilization =
        rng.uniform(0.4, 0.8) * platform.total_speed();
    spec.max_task_utilization = 1.5;
    spec.periods = PeriodSpec::sim_friendly();
    const TaskSet tasks = generate_taskset(rng, spec);

    struct Case {
      AdmissionKind kind;
      double alpha;
      SchedPolicy policy;
    };
    for (const Case c :
         {Case{AdmissionKind::kEdf, 1.0, SchedPolicy::kEdf},
          Case{AdmissionKind::kEdf, 2.0, SchedPolicy::kEdf},
          Case{AdmissionKind::kRmsLiuLayland, 1.0,
               SchedPolicy::kFixedPriorityRm},
          Case{AdmissionKind::kRmsHyperbolic, 1.0,
               SchedPolicy::kFixedPriorityRm},
          Case{AdmissionKind::kRmsResponseTime, 1.0,
               SchedPolicy::kFixedPriorityRm}}) {
      const PartitionResult res =
          first_fit_partition(tasks, platform, c.kind, c.alpha);
      if (!res.feasible) continue;
      ++accepted;
      std::vector<Rational> speeds;
      const Rational alpha = rational_from_double(c.alpha, 1 << 20) * margin;
      for (std::size_t j = 0; j < platform.size(); ++j) {
        speeds.push_back(platform.speed_exact(j) * alpha);
      }
      const PartitionSimOutcome sim =
          simulate_partition(res.tasks_per_machine, speeds, c.policy);
      EXPECT_TRUE(sim.schedulable)
          << to_string(c.kind) << "@" << c.alpha << " "
          << tasks.to_string();
    }
  }
  EXPECT_GT(accepted, 30);
}

// The simulator conserves work: busy time equals total executed demand
// divided by speed when everything completes.
TEST_P(SimPropertyTest, WorkConservation) {
  Rng rng(GetParam() ^ 0xCCCC);
  for (int iter = 0; iter < 20; ++iter) {
    const TaskSet tasks =
        random_sim_friendly_taskset(rng, 4, rng.uniform(0.3, 0.8));
    const Rational speed(2);
    const SimOutcome sim =
        simulate_uniproc(tasks.tasks(), speed, SchedPolicy::kEdf);
    if (!sim.schedulable) continue;
    // Released demand = sum over tasks of (horizon / p_i) * c_i.
    Rational demand(0);
    for (const Task& t : tasks) {
      demand += Rational(sim.horizon / t.period) * Rational(t.exec);
    }
    EXPECT_EQ(sim.busy_time, demand / speed) << tasks.to_string();
    EXPECT_EQ(sim.jobs_released, sim.jobs_completed);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimPropertyTest,
                         ::testing::Values(7u, 14u, 21u, 28u, 35u));

}  // namespace
}  // namespace hetsched
