// Unit tests for exact partitioned feasibility (exact/exact_partition.h).
#include "exact/exact_partition.h"

#include <gtest/gtest.h>

#include "gen/taskset_gen.h"
#include "partition/first_fit.h"
#include "util/rng.h"

namespace hetsched {
namespace {

TEST(Exact, TrivialFeasible) {
  const TaskSet tasks({{1, 2}});
  const Platform platform = Platform::from_speeds({1.0});
  const ExactResult res =
      exact_partition(tasks, platform, AdmissionKind::kEdf);
  EXPECT_EQ(res.verdict, ExactVerdict::kFeasible);
  ASSERT_EQ(res.assignment.size(), 1u);
  EXPECT_EQ(res.assignment[0], 0u);
}

TEST(Exact, EmptyTaskSetFeasible) {
  const TaskSet tasks;
  const Platform platform = Platform::from_speeds({1.0});
  EXPECT_EQ(exact_partition(tasks, platform, AdmissionKind::kEdf).verdict,
            ExactVerdict::kFeasible);
}

TEST(Exact, InfeasibleByTotalUtilization) {
  const TaskSet tasks({{1, 1}, {1, 1}, {1, 1}});
  const Platform platform = Platform::from_speeds({1.0, 1.0});
  EXPECT_EQ(exact_partition(tasks, platform, AdmissionKind::kEdf).verdict,
            ExactVerdict::kInfeasible);
}

TEST(Exact, FindsPartitionFirstFitMisses) {
  // A separating instance (first-fit-decreasing fails, a partition exists):
  // speeds {1, 1}, w = {0.44, 0.42, 0.40, 0.38, 0.20, 0.16}: total 2.00.
  // Exact packing: {0.44, 0.40, 0.16} = 1.00 and {0.42, 0.38, 0.20} = 1.00.
  // FFD: .44->m0, .42->m0 (.86), .40->m1, .38->m1 (.78), .20->m1 (.98),
  // .16 fits neither (.86+.16 and .98+.16 both exceed 1): FF fails.
  const TaskSet tasks({{44, 100}, {42, 100}, {40, 100},
                       {38, 100}, {20, 100}, {16, 100}});
  const Platform platform = Platform::from_speeds({1.0, 1.0});
  EXPECT_FALSE(first_fit_accepts(tasks, platform, AdmissionKind::kEdf, 1.0));
  const ExactResult ex = exact_partition(tasks, platform, AdmissionKind::kEdf);
  EXPECT_EQ(ex.verdict, ExactVerdict::kFeasible);
  const ExactResult bf =
      brute_force_partition(tasks, platform, AdmissionKind::kEdf);
  EXPECT_EQ(bf.verdict, ExactVerdict::kFeasible);
}

TEST(Exact, AssignmentIsAdmissible) {
  const TaskSet tasks({{44, 100}, {42, 100}, {40, 100},
                       {38, 100}, {20, 100}, {16, 100}});
  const Platform platform = Platform::from_speeds({1.0, 1.0});
  const ExactResult ex = exact_partition(tasks, platform, AdmissionKind::kEdf);
  ASSERT_EQ(ex.verdict, ExactVerdict::kFeasible);
  std::vector<double> load(platform.size(), 0.0);
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    ASSERT_LT(ex.assignment[i], platform.size());
    load[ex.assignment[i]] += tasks[i].utilization();
  }
  for (std::size_t j = 0; j < platform.size(); ++j) {
    EXPECT_LE(load[j], platform.speed(j) + 1e-9);
  }
}

TEST(Exact, AlphaScalesCapacity) {
  const TaskSet tasks({{1, 1}, {1, 1}, {1, 1}});
  const Platform platform = Platform::from_speeds({1.0, 1.0});
  EXPECT_EQ(exact_partition(tasks, platform, AdmissionKind::kEdf, 1.0).verdict,
            ExactVerdict::kInfeasible);
  EXPECT_EQ(exact_partition(tasks, platform, AdmissionKind::kEdf, 2.0).verdict,
            ExactVerdict::kFeasible);
}

TEST(Exact, RmsAdmissionKindsDiffer) {
  // Harmonic full-utilization set: RTA-exact partition exists on one
  // machine; no LL-certifiable partition does.
  const TaskSet tasks({{1, 2}, {1, 4}, {2, 8}});
  const Platform platform = Platform::from_speeds({1.0});
  EXPECT_EQ(exact_partition(tasks, platform, AdmissionKind::kRmsResponseTime)
                .verdict,
            ExactVerdict::kFeasible);
  EXPECT_EQ(
      exact_partition(tasks, platform, AdmissionKind::kRmsLiuLayland).verdict,
      ExactVerdict::kInfeasible);
}

TEST(Exact, NodeLimitReported) {
  // A big infeasible instance with a 1-node budget must hit the limit.
  Rng rng(3);
  TasksetSpec spec;
  spec.n = 16;
  spec.total_utilization = 7.9;
  const TaskSet tasks = generate_taskset(rng, spec);
  const Platform platform = Platform::identical(8);
  ExactOptions opts;
  opts.max_nodes = 1;
  const ExactResult res =
      exact_partition(tasks, platform, AdmissionKind::kEdf, 1.0, opts);
  EXPECT_EQ(res.verdict, ExactVerdict::kNodeLimit);
}

TEST(Exact, AgreesWithBruteForceOnRandomInstances) {
  Rng rng(17);
  for (int iter = 0; iter < 40; ++iter) {
    TasksetSpec spec;
    spec.n = 6;
    spec.total_utilization = rng.uniform(1.0, 3.0);
    spec.periods = PeriodSpec::uniform(50, 500);
    const TaskSet tasks = generate_taskset(rng, spec);
    const Platform platform = Platform::from_speeds({0.5, 1.0, 1.5});
    for (const AdmissionKind kind :
         {AdmissionKind::kEdf, AdmissionKind::kRmsLiuLayland}) {
      const ExactResult ex = exact_partition(tasks, platform, kind);
      const ExactResult bf = brute_force_partition(tasks, platform, kind);
      ASSERT_NE(ex.verdict, ExactVerdict::kNodeLimit);
      EXPECT_EQ(ex.verdict, bf.verdict)
          << to_string(kind) << " " << tasks.to_string();
    }
  }
}

TEST(Exact, SymmetryPruningVisitsFewerNodes) {
  // 8 identical machines, infeasible instance: symmetry pruning should keep
  // the node count well below the 8^6 assignment space.
  const TaskSet tasks(
      {{9, 10}, {9, 10}, {9, 10}, {9, 10}, {9, 10}, {9, 10}, {9, 10},
       {9, 10}, {9, 10}});  // nine w=.9 tasks
  const Platform platform = Platform::identical(8);
  const ExactResult res = exact_partition(tasks, platform, AdmissionKind::kEdf);
  EXPECT_EQ(res.verdict, ExactVerdict::kInfeasible);
  EXPECT_LT(res.nodes_visited, 100000);
}

TEST(ExactDeathTest, BruteForceRefusesLargeN) {
  TaskSet tasks;
  for (int i = 0; i < 11; ++i) tasks.push_back({1, 10});
  const Platform platform = Platform::from_speeds({1.0});
  EXPECT_DEATH(brute_force_partition(tasks, platform, AdmissionKind::kEdf),
               "n <= 10");
}

}  // namespace
}  // namespace hetsched
