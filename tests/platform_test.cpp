// Unit tests for the platform model (core/platform.h).
#include "core/platform.h"

#include <gtest/gtest.h>

#include <vector>

namespace hetsched {
namespace {

TEST(Platform, SortsBySpeedAscending) {
  const Platform p = Platform::from_speeds({2.0, 0.5, 1.0});
  ASSERT_EQ(p.size(), 3u);
  EXPECT_DOUBLE_EQ(p.speed(0), 0.5);
  EXPECT_DOUBLE_EQ(p.speed(1), 1.0);
  EXPECT_DOUBLE_EQ(p.speed(2), 2.0);
}

TEST(Platform, PreservesCallerIds) {
  const Platform p = Platform::from_speeds({2.0, 0.5, 1.0});
  EXPECT_EQ(p[0].id, 1u);  // 0.5 was the caller's machine 1
  EXPECT_EQ(p[1].id, 2u);
  EXPECT_EQ(p[2].id, 0u);
}

TEST(Platform, StableSortKeepsEqualSpeedOrder) {
  const Platform p = Platform::from_speeds({1.0, 1.0, 0.5});
  EXPECT_EQ(p[0].id, 2u);
  EXPECT_EQ(p[1].id, 0u);
  EXPECT_EQ(p[2].id, 1u);
}

TEST(Platform, TotalSpeed) {
  const Platform p = Platform::from_speeds({0.5, 1.5, 2.0});
  EXPECT_DOUBLE_EQ(p.total_speed(), 4.0);
  EXPECT_EQ(p.total_speed_exact(), Rational(4));
}

TEST(Platform, MinMaxSpeed) {
  const Platform p = Platform::from_speeds({0.5, 1.5, 2.0});
  EXPECT_DOUBLE_EQ(p.min_speed(), 0.5);
  EXPECT_DOUBLE_EQ(p.max_speed(), 2.0);
}

TEST(Platform, SumFastestPrefix) {
  const Platform p = Platform::from_speeds({1.0, 2.0, 4.0});
  EXPECT_DOUBLE_EQ(p.sum_fastest(0), 0.0);
  EXPECT_DOUBLE_EQ(p.sum_fastest(1), 4.0);
  EXPECT_DOUBLE_EQ(p.sum_fastest(2), 6.0);
  EXPECT_DOUBLE_EQ(p.sum_fastest(3), 7.0);
}

TEST(Platform, IdenticalFactory) {
  const Platform p = Platform::identical(4, Rational(3, 2));
  EXPECT_EQ(p.size(), 4u);
  for (std::size_t j = 0; j < 4; ++j) {
    EXPECT_EQ(p.speed_exact(j), Rational(3, 2));
  }
}

TEST(Platform, FromSpeedsExact) {
  const std::vector<Rational> speeds{Rational(1, 3), Rational(2)};
  const Platform p = Platform::from_speeds_exact(speeds);
  EXPECT_EQ(p.speed_exact(0), Rational(1, 3));
  EXPECT_EQ(p.speed_exact(1), Rational(2));
}

TEST(Platform, FractionalSpeedsExactThroughDouble) {
  const Platform p = Platform::from_speeds({0.25, 1.75});
  EXPECT_EQ(p.speed_exact(0), Rational(1, 4));
  EXPECT_EQ(p.speed_exact(1), Rational(7, 4));
}

TEST(Platform, EmptyPlatform) {
  const Platform p;
  EXPECT_TRUE(p.empty());
  EXPECT_DOUBLE_EQ(p.total_speed(), 0.0);
}

TEST(Platform, ToStringListsSpeeds) {
  const Platform p = Platform::from_speeds({1.0, 2.0});
  const std::string s = p.to_string();
  EXPECT_NE(s.find("m=2"), std::string::npos);
  EXPECT_NE(s.find("1"), std::string::npos);
}

TEST(PlatformDeathTest, NonPositiveSpeedAborts) {
  std::vector<Machine> ms{Machine{Rational(0), 0}};
  EXPECT_DEATH(Platform{std::move(ms)}, "non-positive");
}

}  // namespace
}  // namespace hetsched
