// Tests for src/net/: wire protocol round-trips and rejection, address
// parsing, the bounded MPSC queue, and loopback integration against a
// live server — including the PR's correctness anchor, bit-identical
// served vs offline decision checksums over a generated churn trace.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "gen/churn_gen.h"
#include "gen/platform_gen.h"
#include "net/addr.h"
#include "net/adaptive_batch.h"
#include "net/bounded_queue.h"
#include "net/client.h"
#include "net/protocol.h"
#include "net/server.h"
#include "net/trace_replay.h"
#include "util/rng.h"

namespace hetsched::net {
namespace {

// ---------------------------------------------------------------------
// protocol
// ---------------------------------------------------------------------

TEST(NetProtocol, RequestRoundTripsAllTypes) {
  const Request cases[] = {
      Request::admit(3, 77, 5, 20),
      Request::depart(0, 78, 0xDEADBEEFCAFEULL),
      Request::rebalance(15, 79),
  };
  for (const Request& r : cases) {
    unsigned char buf[kFrameSize];
    ASSERT_EQ(encode_request(r, buf), kFrameSize);
    Request out;
    std::size_t consumed = 0;
    ASSERT_EQ(decode_request(buf, kFrameSize, &out, &consumed),
              DecodeResult::kOk);
    EXPECT_EQ(consumed, kFrameSize);
    EXPECT_EQ(out.type, r.type);
    EXPECT_EQ(out.shard, r.shard);
    EXPECT_EQ(out.request_id, r.request_id);
    EXPECT_EQ(out.a, r.a);
    EXPECT_EQ(out.b, r.b);
  }
}

TEST(NetProtocol, ResponseRoundTripsUtilizationBits) {
  Response r;
  r.type = MsgType::kAdmit;
  r.status = Status::kAdmitted;
  r.machine = 3;
  r.request_id = 123456789;
  r.task_id = (std::uint64_t{7} << 32) | 42;
  r.value = std::bit_cast<std::uint64_t>(0.3123456789);
  unsigned char buf[kFrameSize];
  ASSERT_EQ(encode_response(r, buf), kFrameSize);
  Response out;
  std::size_t consumed = 0;
  ASSERT_EQ(decode_response(buf, kFrameSize, &out, &consumed),
            DecodeResult::kOk);
  EXPECT_EQ(out.status, Status::kAdmitted);
  EXPECT_EQ(out.machine, 3u);
  EXPECT_EQ(out.task_id, r.task_id);
  EXPECT_EQ(out.utilization(), 0.3123456789);  // exact: bit pattern
}

TEST(NetProtocol, RandomizedRequestRoundTrip) {
  Rng rng(0xBEEF);
  for (int i = 0; i < 500; ++i) {
    Request r;
    r.type = static_cast<MsgType>(1 + rng.next_u64() % 3);
    r.shard = static_cast<std::uint16_t>(rng.next_u64());
    r.request_id = rng.next_u64();
    r.a = rng.next_u64();
    r.b = rng.next_u64();
    unsigned char buf[kFrameSize];
    encode_request(r, buf);
    Request out;
    std::size_t consumed = 0;
    ASSERT_EQ(decode_request(buf, kFrameSize, &out, &consumed),
              DecodeResult::kOk);
    EXPECT_EQ(out.shard, r.shard);
    EXPECT_EQ(out.request_id, r.request_id);
    EXPECT_EQ(out.a, r.a);
    EXPECT_EQ(out.b, r.b);
  }
}

TEST(NetProtocol, ShortBuffersNeedMore) {
  unsigned char buf[kFrameSize];
  encode_request(Request::admit(0, 1, 2, 10), buf);
  Request out;
  std::size_t consumed = 0;
  for (std::size_t len = 0; len < kFrameSize; ++len) {
    EXPECT_EQ(decode_request(buf, len, &out, &consumed),
              DecodeResult::kNeedMore)
        << "len " << len;
  }
}

TEST(NetProtocol, MalformedFramesRejected) {
  unsigned char good[kFrameSize];
  encode_request(Request::admit(0, 1, 2, 10), good);
  Request out;
  std::size_t consumed = 0;

  unsigned char bad_len[kFrameSize];
  std::memcpy(bad_len, good, kFrameSize);
  bad_len[0] = 33;  // payload length != kPayloadSize
  EXPECT_EQ(decode_request(bad_len, kFrameSize, &out, &consumed),
            DecodeResult::kBad);

  unsigned char bad_version[kFrameSize];
  std::memcpy(bad_version, good, kFrameSize);
  bad_version[kHeaderSize] = kProtocolVersion + 1;
  EXPECT_EQ(decode_request(bad_version, kFrameSize, &out, &consumed),
            DecodeResult::kBad);

  unsigned char bad_type[kFrameSize];
  std::memcpy(bad_type, good, kFrameSize);
  bad_type[kHeaderSize + 1] = 99;
  EXPECT_EQ(decode_request(bad_type, kFrameSize, &out, &consumed),
            DecodeResult::kBad);

  unsigned char bad_reserved[kFrameSize];
  std::memcpy(bad_reserved, good, kFrameSize);
  bad_reserved[kHeaderSize + 5] = 1;
  EXPECT_EQ(decode_request(bad_reserved, kFrameSize, &out, &consumed),
            DecodeResult::kBad);

  // A request frame is not a response (missing kResponseBit)...
  Response rout;
  EXPECT_EQ(decode_response(good, kFrameSize, &rout, &consumed),
            DecodeResult::kBad);
  // ...and a response frame is not a request (type has kResponseBit).
  Response resp;
  resp.type = MsgType::kAdmit;
  resp.status = Status::kAdmitted;
  unsigned char rbuf[kFrameSize];
  encode_response(resp, rbuf);
  EXPECT_EQ(decode_request(rbuf, kFrameSize, &out, &consumed),
            DecodeResult::kBad);

  unsigned char bad_status[kFrameSize];
  std::memcpy(bad_status, rbuf, kFrameSize);
  bad_status[kHeaderSize + 2] = 200;
  EXPECT_EQ(decode_response(bad_status, kFrameSize, &rout, &consumed),
            DecodeResult::kBad);
}

// ---------------------------------------------------------------------
// addr
// ---------------------------------------------------------------------

TEST(NetAddr, ParsesHostPort) {
  HostPort hp;
  std::string err;
  ASSERT_TRUE(parse_host_port("127.0.0.1:8080", &hp, &err)) << err;
  EXPECT_EQ(hp.host, "127.0.0.1");
  EXPECT_EQ(hp.port, 8080);
  ASSERT_TRUE(parse_host_port(":0", &hp, &err)) << err;
  EXPECT_EQ(hp.host, "0.0.0.0");
  EXPECT_EQ(hp.port, 0);
}

TEST(NetAddr, RejectsMalformedAddresses) {
  HostPort hp;
  std::string err;
  EXPECT_FALSE(parse_host_port("127.0.0.1", &hp, &err));    // no port
  EXPECT_FALSE(parse_host_port("host.name:80", &hp, &err)); // no DNS
  EXPECT_FALSE(parse_host_port("127.0.0.1:65536", &hp, &err));
  EXPECT_FALSE(parse_host_port("127.0.0.1:x", &hp, &err));
  EXPECT_FALSE(parse_host_port("127.0.0.1:", &hp, &err));
  EXPECT_FALSE(parse_host_port("127.0.0.1:-1", &hp, &err));
}

// ---------------------------------------------------------------------
// bounded queue
// ---------------------------------------------------------------------

TEST(BoundedQueue, PushPopFifoAndBackpressure) {
  BoundedMpscQueue<int> q(4);
  EXPECT_EQ(q.capacity(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(q.try_push(int{i}));
  EXPECT_EQ(q.depth(), 4u);
  EXPECT_FALSE(q.try_push(99));  // full: explicit backpressure
  int out[8];
  EXPECT_EQ(q.pop_batch(out, 3), 3u);
  EXPECT_EQ(out[0], 0);
  EXPECT_EQ(out[2], 2);
  EXPECT_EQ(q.depth(), 1u);
  EXPECT_TRUE(q.try_push(4));
  EXPECT_EQ(q.pop_batch(out, 8), 2u);
  EXPECT_EQ(out[0], 3);
  EXPECT_EQ(out[1], 4);
}

TEST(BoundedQueue, CloseDrainsThenSignalsExit) {
  BoundedMpscQueue<int> q(8);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  q.close();
  EXPECT_FALSE(q.try_push(3));  // closed to producers immediately
  int out[8];
  EXPECT_EQ(q.pop_batch(out, 8), 2u);  // remainder still drains
  EXPECT_EQ(q.pop_batch(out, 8), 0u);  // then the exit signal
}

TEST(BoundedQueue, ManyProducersOneConsumer) {
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 5000;
  BoundedMpscQueue<int> q(64);
  std::atomic<long long> pushed_sum{0};
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, &pushed_sum, p] {
      long long local = 0;
      for (int i = 0; i < kPerProducer; ++i) {
        const int v = p * kPerProducer + i;
        while (!q.try_push(int{v})) std::this_thread::yield();
        local += v;
      }
      pushed_sum.fetch_add(local);
    });
  }
  long long popped_sum = 0;
  std::size_t popped = 0;
  int out[32];
  while (popped < kProducers * kPerProducer) {
    const std::size_t n = q.pop_batch(out, 32);
    for (std::size_t i = 0; i < n; ++i) popped_sum += out[i];
    popped += n;
  }
  for (std::thread& t : producers) t.join();
  EXPECT_EQ(popped_sum, pushed_sum.load());
}

TEST(BoundedQueue, TryPopBatchDoesNotBlock) {
  BoundedMpscQueue<int> q(8);
  int out[4];
  EXPECT_EQ(q.try_pop_batch(out, 4), 0u);  // empty: returns immediately
  EXPECT_TRUE(q.try_push(7));
  EXPECT_TRUE(q.try_push(8));
  EXPECT_TRUE(q.try_push(9));
  EXPECT_EQ(q.try_pop_batch(out, 2), 2u);
  EXPECT_EQ(out[0], 7);
  EXPECT_EQ(out[1], 8);
  EXPECT_EQ(q.try_pop_batch(out, 4), 1u);
  EXPECT_EQ(out[0], 9);
  q.close();
  EXPECT_EQ(q.try_pop_batch(out, 4), 0u);
}

// ---------------------------------------------------------------------
// adaptive batch sizing
// ---------------------------------------------------------------------

TEST(AdaptiveBatch, GrowsWhenRoundsUseTheFullBudget) {
  AdaptiveBatch b(1, 64);
  EXPECT_EQ(b.limit(), 1u);  // starts at the latency-optimal floor
  b.observe(1);              // a full round doubles immediately
  EXPECT_EQ(b.limit(), 2u);
  b.observe(2);
  EXPECT_EQ(b.limit(), 4u);
  b.observe(4);
  b.observe(8);
  b.observe(16);
  b.observe(32);
  EXPECT_EQ(b.limit(), 64u);
  b.observe(64);
  EXPECT_EQ(b.limit(), 64u);  // capped at max
}

TEST(AdaptiveBatch, ShrinksOnlyAfterSustainedIdleRounds) {
  AdaptiveBatch b(2, 64);
  while (b.limit() < 64) b.observe(b.limit());
  // Idle rounds (depth <= kShrinkDepth) must persist for kShrinkPatience
  // consecutive rounds before the budget halves.
  for (std::size_t i = 0; i < AdaptiveBatch::kShrinkPatience; ++i) {
    EXPECT_EQ(b.limit(), 64u);
    b.observe(1);
  }
  EXPECT_EQ(b.limit(), 32u);
  // Sustained idleness walks the budget down to the floor, never below.
  for (int halvings = 0; halvings < 10; ++halvings) {
    for (std::size_t i = 0; i < AdaptiveBatch::kShrinkPatience; ++i) {
      b.observe(0);
    }
  }
  EXPECT_EQ(b.limit(), b.min_limit());
  EXPECT_EQ(b.limit(), 2u);
}

TEST(AdaptiveBatch, PartialRoundsResetShrinkPatience) {
  AdaptiveBatch b(1, 64);
  while (b.limit() < 64) b.observe(b.limit());
  // One idle gap short of patience, then a healthy partial round: the
  // budget must hold (a busy stream with occasional gaps keeps its
  // syscall amortization).
  for (int round = 0; round < 20; ++round) {
    for (std::size_t i = 0; i + 1 < AdaptiveBatch::kShrinkPatience; ++i) {
      b.observe(1);
    }
    b.observe(32);
  }
  EXPECT_EQ(b.limit(), 64u);
}

// ---------------------------------------------------------------------
// loopback integration
// ---------------------------------------------------------------------

std::string loopback_addr(const Server& server) {
  return "127.0.0.1:" + std::to_string(server.port());
}

ChurnTrace make_trace(std::uint64_t seed, std::size_t arrivals) {
  Rng rng(seed);
  ChurnSpec spec;
  spec.arrivals = arrivals;
  return generate_churn_trace(rng, spec);
}

// Polls a server-stats predicate with a deadline — the event loop and the
// client run asynchronously, so tests wait for effects, never sleep for
// fixed amounts.
template <typename Pred>
bool eventually(const Pred& pred, int timeout_ms = 5000) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  while (!pred()) {
    if (std::chrono::steady_clock::now() > deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return true;
}

// The correctness anchor: the served decision sequence over loopback is
// bit-identical (FNV-1a) to an offline replay of the same trace.
TEST(NetLoopback, ServedChecksumMatchesOfflineReplay) {
  const Platform pf = geometric_platform(4, 1.5);
  const ChurnTrace trace = make_trace(42, 300);
  const std::uint64_t offline =
      offline_decision_checksum(pf, trace, AdmissionKind::kEdf, 1.0);

  ServerOptions opts;
  opts.shards = 1;
  opts.kind = AdmissionKind::kEdf;
  opts.alpha = 1.0;
  opts.queue_depth = 1024;  // >= window, so retries cannot occur
  Server server(pf, opts);
  std::string err;
  ASSERT_TRUE(server.start(&err)) << err;

  Client client;
  ASSERT_TRUE(client.connect(loopback_addr(server), 2000, &err)) << err;
  const ReplaySummary sum =
      replay_trace_over_client(client, trace, 0, 64, 5000);
  ASSERT_TRUE(sum.ok) << client.last_error();
  ASSERT_EQ(sum.retried, 0u);  // precondition for checksum comparability
  EXPECT_GT(sum.admitted, 0u);
  EXPECT_EQ(sum.checksum, offline);

  server.request_stop();
  server.wait();
  const ServerStats s = server.stats();
  EXPECT_EQ(s.admitted, sum.admitted);
  EXPECT_EQ(s.rejected, sum.rejected);
  EXPECT_EQ(s.departed, sum.departed);
  EXPECT_EQ(s.retried, 0u);
}

TEST(NetLoopback, ChecksumMatchesForRmsKindToo) {
  const Platform pf = geometric_platform(3, 2.0);
  const ChurnTrace trace = make_trace(7, 200);
  const std::uint64_t offline = offline_decision_checksum(
      pf, trace, AdmissionKind::kRmsHyperbolic, 1.5);

  ServerOptions opts;
  opts.shards = 1;
  opts.kind = AdmissionKind::kRmsHyperbolic;
  opts.alpha = 1.5;
  Server server(pf, opts);
  std::string err;
  ASSERT_TRUE(server.start(&err)) << err;
  Client client;
  ASSERT_TRUE(client.connect(loopback_addr(server), 2000, &err)) << err;
  const ReplaySummary sum =
      replay_trace_over_client(client, trace, 0, 32, 5000);
  ASSERT_TRUE(sum.ok) << client.last_error();
  ASSERT_EQ(sum.retried, 0u);
  EXPECT_EQ(sum.checksum, offline);
}

// Shards are independent tenants: concurrent replays against different
// shards both reproduce the single-controller offline checksum.
TEST(NetLoopback, ShardsAreIndependentTenants) {
  const Platform pf = geometric_platform(4, 1.5);
  const ChurnTrace traces[2] = {make_trace(1, 150), make_trace(2, 150)};
  std::uint64_t offline[2];
  for (int i = 0; i < 2; ++i) {
    offline[i] =
        offline_decision_checksum(pf, traces[i], AdmissionKind::kEdf, 1.0);
  }

  ServerOptions opts;
  opts.shards = 2;
  Server server(pf, opts);
  std::string err;
  ASSERT_TRUE(server.start(&err)) << err;

  ReplaySummary sums[2];
  std::string errs[2];
  std::thread workers[2];
  for (int i = 0; i < 2; ++i) {
    workers[i] = std::thread([&, i] {
      Client client;
      std::string cerr;
      if (!client.connect(loopback_addr(server), 2000, &cerr)) {
        errs[i] = cerr;
        return;
      }
      sums[i] = replay_trace_over_client(
          client, traces[i], static_cast<std::uint16_t>(i), 32, 5000);
    });
  }
  for (std::thread& t : workers) t.join();
  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE(sums[i].ok) << errs[i];
    ASSERT_EQ(sums[i].retried, 0u);
    EXPECT_EQ(sums[i].checksum, offline[i]) << "shard " << i;
  }
}

TEST(NetLoopback, StatusCodesForEdgeRequests) {
  const Platform pf = geometric_platform(2, 1.5);
  ServerOptions opts;
  Server server(pf, opts);
  std::string err;
  ASSERT_TRUE(server.start(&err)) << err;
  Client client;
  ASSERT_TRUE(client.connect(loopback_addr(server), 2000, &err)) << err;

  Response r;
  ASSERT_TRUE(client.call(Request::admit(0, 1, 2, 10), &r, 2000))
      << client.last_error();
  EXPECT_EQ(r.status, Status::kAdmitted);
  EXPECT_EQ(r.request_id, 1u);
  EXPECT_GT(r.utilization(), 0.0);

  ASSERT_TRUE(client.call(Request::depart(0, 2, r.task_id), &r, 2000));
  EXPECT_EQ(r.status, Status::kDeparted);
  ASSERT_TRUE(client.call(Request::depart(0, 3, r.task_id), &r, 2000));
  EXPECT_EQ(r.status, Status::kStaleId);  // id generation prevents reuse

  ASSERT_TRUE(client.call(Request::admit(0, 4, 0, 10), &r, 2000));
  EXPECT_EQ(r.status, Status::kBadRequest);  // non-positive exec

  ASSERT_TRUE(client.call(Request::admit(9, 5, 2, 10), &r, 2000));
  EXPECT_EQ(r.status, Status::kBadShard);  // only shard 0 exists

  ASSERT_TRUE(client.call(Request::rebalance(0, 6), &r, 2000));
  EXPECT_EQ(r.status, Status::kRebalanced);
  EXPECT_EQ(r.task_id, 0u);  // no residents: zero migrations
}

// Backpressure: with the shard paused and a tiny queue, excess requests
// are answered kRetryLater immediately — the queue is the only buffer.
TEST(NetLoopback, FullQueueAnswersRetryLater) {
  const Platform pf = geometric_platform(2, 1.5);
  ServerOptions opts;
  opts.queue_depth = 4;
  opts.start_paused = true;
  Server server(pf, opts);
  std::string err;
  ASSERT_TRUE(server.start(&err)) << err;
  Client client;
  ASSERT_TRUE(client.connect(loopback_addr(server), 2000, &err)) << err;

  constexpr std::uint64_t kRequests = 32;
  for (std::uint64_t i = 0; i < kRequests; ++i) {
    client.queue_request(Request::admit(0, i, 1, 100));
  }
  ASSERT_TRUE(client.flush(2000)) << client.last_error();
  // All frames reach the event loop; exactly queue_depth fit the queue.
  ASSERT_TRUE(eventually([&] {
    return server.stats().frames_rx == kRequests;
  }));
  ServerStats s = server.stats();
  EXPECT_EQ(s.enqueued, opts.queue_depth);
  EXPECT_EQ(s.retried, kRequests - opts.queue_depth);

  server.resume_shards();
  std::uint64_t retries = 0;
  std::uint64_t admitted = 0;
  for (std::uint64_t i = 0; i < kRequests; ++i) {
    Response r;
    ASSERT_TRUE(client.recv_response(&r, 5000)) << client.last_error();
    if (r.status == Status::kRetryLater) ++retries;
    if (r.status == Status::kAdmitted) ++admitted;
  }
  EXPECT_EQ(retries, kRequests - opts.queue_depth);
  EXPECT_EQ(admitted, opts.queue_depth);  // u=0.01 each: all fit
}

// Graceful shutdown: requests queued before request_stop() are still
// decided and answered before the sockets close.
TEST(NetLoopback, StopDrainsQueuedRequests) {
  const Platform pf = geometric_platform(2, 1.5);
  ServerOptions opts;
  opts.queue_depth = 64;
  opts.start_paused = true;
  Server server(pf, opts);
  std::string err;
  ASSERT_TRUE(server.start(&err)) << err;
  Client client;
  ASSERT_TRUE(client.connect(loopback_addr(server), 2000, &err)) << err;

  constexpr std::uint64_t kRequests = 16;
  for (std::uint64_t i = 0; i < kRequests; ++i) {
    client.queue_request(Request::admit(0, i, 1, 100));
  }
  ASSERT_TRUE(client.flush(2000)) << client.last_error();
  ASSERT_TRUE(eventually([&] {
    return server.stats().enqueued == kRequests;
  }));

  server.request_stop();  // unpauses, drains, then closes
  for (std::uint64_t i = 0; i < kRequests; ++i) {
    Response r;
    ASSERT_TRUE(client.recv_response(&r, 5000))
        << "response " << i << ": " << client.last_error();
    EXPECT_EQ(r.request_id, i);
    EXPECT_EQ(r.status, Status::kAdmitted);
  }
  server.wait();
  EXPECT_FALSE(server.running());
  EXPECT_EQ(server.stats().admitted, kRequests);
}

// A malformed byte stream cannot be re-framed: the server drops the peer.
TEST(NetLoopback, GarbageBytesCloseTheConnection) {
  const Platform pf = geometric_platform(2, 1.5);
  ServerOptions opts;
  Server server(pf, opts);
  std::string err;
  ASSERT_TRUE(server.start(&err)) << err;

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_port = htons(server.port());
  ::inet_pton(AF_INET, "127.0.0.1", &sa.sin_addr);
  ASSERT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&sa), sizeof(sa)),
            0);
  unsigned char garbage[kFrameSize];
  std::memset(garbage, 0xFF, sizeof(garbage));
  ASSERT_EQ(::send(fd, garbage, sizeof(garbage), 0),
            static_cast<ssize_t>(sizeof(garbage)));
  unsigned char buf[16];
  EXPECT_EQ(::recv(fd, buf, sizeof(buf), 0), 0);  // EOF: peer dropped us
  ::close(fd);
  EXPECT_TRUE(eventually([&] { return server.stats().bad == 1; }));
}

TEST(NetServer, StartRejectsBadOptions) {
  const Platform pf = geometric_platform(2, 1.5);
  std::string err;
  {
    ServerOptions opts;
    opts.shards = kMaxShards + 1;
    Server server(pf, opts);
    EXPECT_FALSE(server.start(&err));
  }
  {
    ServerOptions opts;
    opts.listen_addr = "127.0.0.1";  // missing port
    Server server(pf, opts);
    EXPECT_FALSE(server.start(&err));
  }
  {
    ServerOptions opts;
    opts.queue_depth = 0;
    Server server(pf, opts);
    EXPECT_FALSE(server.start(&err));
  }
  {
    ServerOptions opts;
    opts.loops = kMaxLoops + 1;
    Server server(pf, opts);
    EXPECT_FALSE(server.start(&err));
  }
  {
    ServerOptions opts;
    opts.batch_min = 0;
    Server server(pf, opts);
    EXPECT_FALSE(server.start(&err));
  }
  {
    ServerOptions opts;
    opts.batch = 8;
    opts.batch_min = 16;  // floor above ceiling
    Server server(pf, opts);
    EXPECT_FALSE(server.start(&err));
  }
}

// ---------------------------------------------------------------------
// thread-per-core: acceptor distribution, cross-loop routing, backlogs
// ---------------------------------------------------------------------

TEST(NetLoopback, ReuseportSpreadsConnectionsAcrossLoops) {
  const Platform pf = geometric_platform(2, 1.5);
  ServerOptions opts;
  opts.shards = 4;
  opts.loops = 4;
  Server server(pf, opts);
  std::string err;
  ASSERT_TRUE(server.start(&err)) << err;
  if (!server.reuseport_active()) GTEST_SKIP() << "no SO_REUSEPORT here";
  ASSERT_EQ(server.loop_count(), 4u);

  constexpr std::size_t kClients = 64;
  std::vector<Client> clients(kClients);
  for (Client& c : clients) {
    ASSERT_TRUE(c.connect(loopback_addr(server), 2000, &err)) << err;
  }
  ASSERT_TRUE(eventually([&] {
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < server.loop_count(); ++i) {
      total += server.loop_connections(i);
    }
    return total == kClients;
  }));
  // The kernel hashes 64 distinct source ports over 4 listen sockets:
  // every loop must end up accepting at least one connection.
  for (std::size_t i = 0; i < server.loop_count(); ++i) {
    EXPECT_GE(server.loop_connections(i), 1u) << "loop " << i;
  }
}

// With reuseport off, loop 0's single acceptor hands fds round-robin.
// Each client below then replays the shard the OTHER loop owns, forcing
// the cross-loop queue path for every frame — checksums must still hold.
TEST(NetLoopback, FallbackAcceptorRoutesAcrossLoops) {
  const Platform pf = geometric_platform(4, 1.5);
  const ChurnTrace traces[2] = {make_trace(11, 200), make_trace(12, 200)};
  std::uint64_t offline[2];
  for (int i = 0; i < 2; ++i) {
    offline[i] =
        offline_decision_checksum(pf, traces[i], AdmissionKind::kEdf, 1.0);
  }

  ServerOptions opts;
  opts.shards = 2;
  opts.loops = 2;
  opts.reuseport = false;
  Server server(pf, opts);
  std::string err;
  ASSERT_TRUE(server.start(&err)) << err;
  EXPECT_FALSE(server.reuseport_active());

  // Connect sequentially so the handoff is deterministic: client 0 lands
  // on loop 0, client 1 on loop 1 (round-robin from loop 0's acceptor).
  Client clients[2];
  ASSERT_TRUE(clients[0].connect(loopback_addr(server), 2000, &err)) << err;
  ASSERT_TRUE(eventually([&] { return server.stats().connections == 1; }));
  ASSERT_TRUE(clients[1].connect(loopback_addr(server), 2000, &err)) << err;
  ASSERT_TRUE(eventually([&] { return server.stats().connections == 2; }));
  EXPECT_EQ(server.loop_connections(0), 1u);
  EXPECT_EQ(server.loop_connections(1), 1u);

  ReplaySummary sums[2];
  std::thread workers[2];
  for (int i = 0; i < 2; ++i) {
    workers[i] = std::thread([&, i] {
      // Client i sits on loop i; shard 1 - i is owned by loop 1 - i.
      sums[i] = replay_trace_over_client(clients[i], traces[1 - i],
                                         static_cast<std::uint16_t>(1 - i), 32,
                                         5000);
    });
  }
  for (std::thread& t : workers) t.join();
  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE(sums[i].ok) << clients[i].last_error();
    ASSERT_EQ(sums[i].retried, 0u);
    EXPECT_EQ(sums[i].checksum, offline[1 - i]) << "connection " << i;
  }
  const ServerStats s = server.stats();
  EXPECT_EQ(s.frames_inline, 0u);  // every frame crossed loops
  EXPECT_EQ(s.enqueued, s.frames_rx);
}

// The correctness anchor in thread-per-core mode: with 4 loops accepting
// via SO_REUSEPORT, concurrent per-shard replays stay bit-identical to
// offline no matter which loop each connection lands on (frames run
// inline when the loop owns the shard and cross a queue otherwise).
TEST(NetLoopback, MultiLoopServeMatchesOfflineChecksums) {
  constexpr int kShards = 4;
  const Platform pf = geometric_platform(4, 1.5);
  ChurnTrace traces[kShards];
  std::uint64_t offline[kShards];
  for (int i = 0; i < kShards; ++i) {
    traces[i] = make_trace(100 + static_cast<std::uint64_t>(i), 200);
    offline[i] =
        offline_decision_checksum(pf, traces[i], AdmissionKind::kEdf, 1.0);
  }

  ServerOptions opts;
  opts.shards = kShards;
  opts.loops = 4;
  Server server(pf, opts);
  std::string err;
  ASSERT_TRUE(server.start(&err)) << err;
  ASSERT_EQ(server.loop_count(), 4u);

  ReplaySummary sums[kShards];
  std::string errs[kShards];
  std::thread workers[kShards];
  for (int i = 0; i < kShards; ++i) {
    workers[i] = std::thread([&, i] {
      Client client;
      std::string cerr;
      if (!client.connect(loopback_addr(server), 2000, &cerr)) {
        errs[i] = cerr;
        return;
      }
      sums[i] = replay_trace_over_client(
          client, traces[i], static_cast<std::uint16_t>(i), 32, 5000);
    });
  }
  for (std::thread& t : workers) t.join();
  for (int i = 0; i < kShards; ++i) {
    ASSERT_TRUE(sums[i].ok) << errs[i];
    ASSERT_EQ(sums[i].retried, 0u);
    EXPECT_EQ(sums[i].checksum, offline[i]) << "shard " << i;
  }
  const ServerStats s = server.stats();
  EXPECT_EQ(s.frames_inline + s.enqueued, s.frames_rx);
}

// Partial-write regression: a tiny server-side SO_SNDBUF plus a client
// that reads nothing until it has sent everything forces EAGAIN on the
// response path.  Every response must still arrive, in order, and the
// partial_writes counter proves the backlog/EPOLLOUT resumption ran.
TEST(NetLoopback, TinySndbufPartialWritesResumeInOrder) {
  const Platform pf = geometric_platform(2, 1.5);
  ServerOptions opts;
  opts.sndbuf_bytes = 4096;  // clamped to the kernel floor; still tiny
  Server server(pf, opts);
  std::string err;
  ASSERT_TRUE(server.start(&err)) << err;

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  const int rcv = 2048;  // tiny client receive window, set before connect
  ASSERT_EQ(::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &rcv, sizeof(rcv)), 0);
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_port = htons(server.port());
  ::inet_pton(AF_INET, "127.0.0.1", &sa.sin_addr);
  ASSERT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&sa), sizeof(sa)),
            0);

  // 2000 responses (72 KB) cannot fit in the server's send buffer plus
  // our receive window, so the server must park response backlogs while
  // we send and can only finish once we start reading.
  constexpr std::uint64_t kRequests = 2000;
  std::vector<unsigned char> wire(kRequests * kFrameSize);
  for (std::uint64_t i = 0; i < kRequests; ++i) {
    encode_request(Request::admit(0, i, 1, 1000000),
                   wire.data() + i * kFrameSize);
  }
  std::size_t sent = 0;
  while (sent < wire.size()) {
    const ssize_t w =
        ::send(fd, wire.data() + sent, wire.size() - sent, MSG_NOSIGNAL);
    ASSERT_GT(w, 0) << std::strerror(errno);
    sent += static_cast<std::size_t>(w);
  }

  std::vector<unsigned char> in;
  in.reserve(wire.size());
  unsigned char chunk[4096];
  std::uint64_t got = 0;
  std::size_t off = 0;
  while (got < kRequests) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    ASSERT_GT(n, 0) << std::strerror(errno);
    in.insert(in.end(), chunk, chunk + n);
    while (true) {
      Response r;
      std::size_t consumed = 0;
      const DecodeResult d =
          decode_response(in.data() + off, in.size() - off, &r, &consumed);
      ASSERT_NE(d, DecodeResult::kBad);
      if (d != DecodeResult::kOk) break;
      off += consumed;
      EXPECT_EQ(r.request_id, got);  // order preserved across resumptions
      ++got;
    }
  }
  ::close(fd);
  EXPECT_GT(server.stats().partial_writes, 0u);
  server.request_stop();
  server.wait();
  EXPECT_EQ(server.stats().frames_rx, kRequests);
}

TEST(NetReplay, OfflineChecksumIsDeterministic) {
  const Platform pf = geometric_platform(4, 1.5);
  const ChurnTrace trace = make_trace(5, 100);
  const std::uint64_t a =
      offline_decision_checksum(pf, trace, AdmissionKind::kEdf, 2.0);
  const std::uint64_t b =
      offline_decision_checksum(pf, trace, AdmissionKind::kEdf, 2.0);
  EXPECT_EQ(a, b);
  // Engine choice must not change decisions (bit-identical engines).
  const std::uint64_t naive = offline_decision_checksum(
      pf, trace, AdmissionKind::kEdf, 2.0, PartitionEngine::kNaive);
  EXPECT_EQ(a, naive);
}

}  // namespace
}  // namespace hetsched::net
