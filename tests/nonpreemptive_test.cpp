// Tests for the non-preemptive EDF simulation policy (sim/event_sim.h).
#include <gtest/gtest.h>

#include "sim/event_sim.h"
#include "util/rng.h"

namespace hetsched {
namespace {

TEST(EdfNp, SingleTaskIdenticalToPreemptive) {
  const std::vector<Task> tasks{{2, 5}};
  const SimOutcome p = simulate_uniproc(tasks, Rational(1), SchedPolicy::kEdf);
  const SimOutcome np =
      simulate_uniproc(tasks, Rational(1), SchedPolicy::kEdfNonPreemptive);
  EXPECT_EQ(p.schedulable, np.schedulable);
  EXPECT_EQ(p.busy_time, np.busy_time);
}

TEST(EdfNp, NeverPreempts) {
  // A workload with heavy preemption under EDF must show zero under EDF-NP.
  const std::vector<Task> tasks{{1, 4}, {9, 12}};
  const SimOutcome p = simulate_uniproc(tasks, Rational(1), SchedPolicy::kEdf);
  EXPECT_GT(p.preemptions, 0);
  const SimOutcome np =
      simulate_uniproc(tasks, Rational(1), SchedPolicy::kEdfNonPreemptive);
  EXPECT_EQ(np.preemptions, 0);
}

TEST(EdfNp, BlockingAnomalyMissesWherePreemptiveSucceeds) {
  // Long job (8, 20) starts at 0 and blocks the (1, 3)-task's first job
  // past its deadline.  Preemptive EDF schedules the set (U ~ 0.73).
  const std::vector<Task> tasks{{1, 3}, {8, 20}};
  EXPECT_TRUE(
      simulate_uniproc(tasks, Rational(1), SchedPolicy::kEdf).schedulable);
  const SimOutcome np =
      simulate_uniproc(tasks, Rational(1), SchedPolicy::kEdfNonPreemptive);
  EXPECT_FALSE(np.schedulable);
  ASSERT_TRUE(np.miss.has_value());
  EXPECT_EQ(np.miss->task_index, 0u);
}

TEST(EdfNp, ShortJobsScheduleFine) {
  // All executions well below every deadline: non-preemptive blocking is
  // bounded by one short job; the set stays schedulable.
  const std::vector<Task> tasks{{1, 6}, {1, 8}, {1, 12}};
  const SimOutcome np =
      simulate_uniproc(tasks, Rational(1), SchedPolicy::kEdfNonPreemptive);
  EXPECT_TRUE(np.schedulable);
}

TEST(EdfNp, PreemptiveDominatesOnRandomInstances) {
  // Whenever EDF-NP schedules a set, preemptive EDF must too (preemptive
  // EDF is optimal on one machine).
  Rng rng(5);
  int np_ok = 0;
  for (int iter = 0; iter < 60; ++iter) {
    std::vector<Task> tasks;
    for (int i = 0; i < 3; ++i) {
      const std::int64_t p = rng.uniform_int(4, 12);
      tasks.push_back(Task{rng.uniform_int(1, p / 2), p});
    }
    const bool np = simulate_uniproc(tasks, Rational(1),
                                     SchedPolicy::kEdfNonPreemptive)
                        .schedulable;
    if (np) {
      ++np_ok;
      EXPECT_TRUE(simulate_uniproc(tasks, Rational(1), SchedPolicy::kEdf)
                      .schedulable);
    }
  }
  EXPECT_GT(np_ok, 10);
}

TEST(EdfNp, PolicyName) {
  EXPECT_EQ(to_string(SchedPolicy::kEdfNonPreemptive), "EDF-NP");
}

}  // namespace
}  // namespace hetsched
