// Unit + property tests for the constrained-deadline DBF machinery
// (dbf/demand_bound.h).
#include "dbf/demand_bound.h"

#include <gtest/gtest.h>

#include "sim/event_sim.h"
#include "util/rng.h"

namespace hetsched {
namespace {

TEST(Dbf, SingleTaskStepFunction) {
  const ConstrainedTask t{2, 3, 5};
  EXPECT_EQ(dbf(t, 0), 0);
  EXPECT_EQ(dbf(t, 2), 0);
  EXPECT_EQ(dbf(t, 3), 2);   // first deadline at 3
  EXPECT_EQ(dbf(t, 7), 2);
  EXPECT_EQ(dbf(t, 8), 4);   // second job: release 5, deadline 8
  EXPECT_EQ(dbf(t, 13), 6);
}

TEST(Dbf, ImplicitDeadlineMatchesUtilizationAsymptotically) {
  const ConstrainedTask t{1, 4, 4};
  // dbf(k*4) = k * 1.
  for (std::int64_t k = 1; k <= 10; ++k) {
    EXPECT_EQ(dbf(t, 4 * k), k);
  }
}

TEST(Dbf, TotalSumsTasks) {
  const std::vector<ConstrainedTask> ts{{2, 3, 5}, {1, 4, 4}};
  EXPECT_EQ(total_dbf(ts, 4), 2 + 1);
}

TEST(DbfBound, InfeasibleUtilizationGivesNullopt) {
  const std::vector<ConstrainedTask> ts{{3, 2, 2}};  // U = 1.5
  EXPECT_FALSE(dbf_check_bound(ts, Rational(1)).has_value());
  EXPECT_TRUE(dbf_check_bound(ts, Rational(2)).has_value());
}

TEST(DbfBound, CoversLargestDeadline) {
  const std::vector<ConstrainedTask> ts{{1, 9, 10}};
  const auto bound = dbf_check_bound(ts, Rational(1));
  ASSERT_TRUE(bound.has_value());
  EXPECT_GE(*bound, 9);
}

TEST(DbfExact, ImplicitDeadlineReducesToUtilizationTest) {
  // For implicit deadlines the processor-demand criterion is exactly
  // U <= s.
  const std::vector<ConstrainedTask> ok{{1, 2, 2}, {1, 2, 2}};    // U = 1
  const std::vector<ConstrainedTask> bad{{1, 2, 2}, {2, 3, 3}};   // U ~ 1.17
  EXPECT_TRUE(edf_dbf_feasible_exact(ok, Rational(1)));
  EXPECT_FALSE(edf_dbf_feasible_exact(bad, Rational(1)));
}

TEST(DbfExact, ConstrainedDeadlinesBiteBelowFullUtilization) {
  // Two tasks with U = 0.6 but both deadlines at 2: dbf(2) = 2 > 2 * s for
  // s < 1... at s = 1, dbf(2) = 2 <= 2 fits exactly; tighten: three tasks.
  const std::vector<ConstrainedTask> tight{{1, 2, 10}, {1, 2, 10},
                                           {1, 2, 10}};
  EXPECT_FALSE(edf_dbf_feasible_exact(tight, Rational(1)));  // dbf(2)=3 > 2
  EXPECT_TRUE(edf_dbf_feasible_exact(tight, Rational(3, 2)));  // 3 <= 3
}

TEST(DbfExact, SpeedScalesDemandCapacity) {
  const std::vector<ConstrainedTask> ts{{4, 5, 10}, {3, 6, 12}};
  EXPECT_FALSE(edf_dbf_feasible_exact(ts, Rational(1)));
  EXPECT_TRUE(edf_dbf_feasible_exact(ts, Rational(2)));
}

TEST(DbfQpa, MatchesExactOnCuratedCases) {
  const std::vector<std::vector<ConstrainedTask>> cases{
      {{2, 3, 5}},
      {{1, 2, 10}, {1, 2, 10}, {1, 2, 10}},
      {{4, 5, 10}, {3, 6, 12}},
      {{1, 2, 2}, {1, 2, 2}},
      {{5, 7, 20}, {2, 3, 9}, {1, 4, 4}},
  };
  for (const auto& ts : cases) {
    for (const Rational speed : {Rational(1), Rational(3, 2), Rational(2)}) {
      EXPECT_EQ(edf_dbf_feasible_exact(ts, speed),
                edf_dbf_feasible_qpa(ts, speed))
          << "speed " << speed.to_string();
    }
  }
}

TEST(DbfApprox, NeverAcceptsInfeasible) {
  const std::vector<ConstrainedTask> tight{{1, 2, 10}, {1, 2, 10},
                                           {1, 2, 10}};
  EXPECT_FALSE(edf_dbf_feasible_approx(tight, Rational(1)));
}

TEST(DbfApprox, AcceptsEasySets) {
  const std::vector<ConstrainedTask> easy{{1, 5, 10}, {1, 8, 12}};
  EXPECT_TRUE(edf_dbf_feasible_approx(easy, Rational(1)));
}

TEST(DbfApproxK, KEqualsOneMatchesLinearApprox) {
  Rng rng(404);
  for (int iter = 0; iter < 60; ++iter) {
    std::vector<ConstrainedTask> ts;
    for (int i = 0; i < 4; ++i) {
      const std::int64_t period = rng.uniform_int(4, 60);
      const std::int64_t deadline = rng.uniform_int(2, period);
      ts.push_back(ConstrainedTask{
          rng.uniform_int(1, std::max<std::int64_t>(1, deadline / 2)),
          deadline, period});
    }
    const Rational speed(rng.uniform_int(2, 8), 4);
    EXPECT_EQ(edf_dbf_feasible_approx(ts, speed),
              edf_dbf_feasible_approx_k(ts, speed, 1));
  }
}

TEST(DbfApproxK, MonotoneInKAndSoundAgainstExact) {
  Rng rng(405);
  int gained = 0;
  for (int iter = 0; iter < 100; ++iter) {
    std::vector<ConstrainedTask> ts;
    for (int i = 0; i < 4; ++i) {
      const std::int64_t period = rng.uniform_int(4, 60);
      const std::int64_t deadline = rng.uniform_int(2, period);
      ts.push_back(ConstrainedTask{rng.uniform_int(1, deadline), deadline,
                                   period});
    }
    const Rational speed(rng.uniform_int(3, 9), 4);
    bool prev = false;
    for (const std::size_t k : {1u, 2u, 4u, 8u}) {
      const bool ok = edf_dbf_feasible_approx_k(ts, speed, k);
      if (ok) {
        // Soundness at every k.
        EXPECT_TRUE(edf_dbf_feasible_exact(ts, speed)) << "k=" << k;
      }
      if (prev) {
        EXPECT_TRUE(ok) << "acceptance must grow with k";
      }
      prev = ok;
    }
    if (!edf_dbf_feasible_approx_k(ts, speed, 1) &&
        edf_dbf_feasible_approx_k(ts, speed, 8)) {
      ++gained;
    }
  }
  EXPECT_GT(gained, 0);  // larger k must buy real acceptance somewhere
}

TEST(DbfApproxK, LargeKNearlyConvergesToExact) {
  // With k = 64 the retained steps cover the whole check bound for these
  // tiny sets, so the only remaining disagreements are (a) points where a
  // *different* task is already past its kink inside a long busy period
  // and (b) exact-equality boundaries the conservative comparison band
  // rejects by design.  Both are rare: require >= 90% agreement on
  // exact-feasible instances (it would be ~50% at k = 1 on this mix).
  Rng rng(406);
  int exact_feasible = 0, agreed = 0;
  for (int iter = 0; iter < 100; ++iter) {
    std::vector<ConstrainedTask> ts;
    for (int i = 0; i < 3; ++i) {
      const std::int64_t period = rng.uniform_int(4, 16);
      const std::int64_t deadline = rng.uniform_int(2, period);
      ts.push_back(ConstrainedTask{rng.uniform_int(1, deadline), deadline,
                                   period});
    }
    const Rational speed(rng.uniform_int(4, 10), 4);
    const bool exact = edf_dbf_feasible_exact(ts, speed);
    if (!exact) continue;
    ++exact_feasible;
    agreed += edf_dbf_feasible_approx_k(ts, speed, 64);
  }
  EXPECT_GT(exact_feasible, 30);
  EXPECT_GE(static_cast<double>(agreed),
            0.9 * static_cast<double>(exact_feasible));
}

TEST(DbfEmpty, AllTestsAcceptEmpty) {
  const std::vector<ConstrainedTask> none;
  EXPECT_TRUE(edf_dbf_feasible_exact(none, Rational(1)));
  EXPECT_TRUE(edf_dbf_feasible_qpa(none, Rational(1)));
  EXPECT_TRUE(edf_dbf_feasible_approx(none, Rational(1)));
}

// ------------------------------------------------------------ properties

std::vector<ConstrainedTask> random_constrained(Rng& rng, std::size_t n) {
  std::vector<ConstrainedTask> ts;
  for (std::size_t i = 0; i < n; ++i) {
    const std::int64_t period = rng.uniform_int(4, 60);
    const std::int64_t deadline = rng.uniform_int(2, period);
    const std::int64_t exec =
        rng.uniform_int(1, std::max<std::int64_t>(1, deadline / 2));
    ts.push_back(ConstrainedTask{exec, deadline, period});
  }
  return ts;
}

class DbfPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

// QPA and exhaustive enumeration are the same test.
TEST_P(DbfPropertyTest, QpaEquivalentToExact) {
  Rng rng(GetParam());
  for (int iter = 0; iter < 150; ++iter) {
    const auto ts = random_constrained(rng, 4);
    const Rational speed(rng.uniform_int(2, 8), 4);
    EXPECT_EQ(edf_dbf_feasible_exact(ts, speed),
              edf_dbf_feasible_qpa(ts, speed));
  }
}

// The linear approximation is sound: approx-accept implies exact-accept.
TEST_P(DbfPropertyTest, ApproxIsSound) {
  Rng rng(GetParam() ^ 0xD1);
  int accepted = 0;
  for (int iter = 0; iter < 150; ++iter) {
    const auto ts = random_constrained(rng, 4);
    const Rational speed(rng.uniform_int(2, 8), 4);
    if (edf_dbf_feasible_approx(ts, speed)) {
      ++accepted;
      EXPECT_TRUE(edf_dbf_feasible_exact(ts, speed));
    }
  }
  EXPECT_GT(accepted, 10);
}

// Exact DBF test == exact synchronous EDF simulation (both ground truth).
TEST_P(DbfPropertyTest, ExactMatchesSimulation) {
  Rng rng(GetParam() ^ 0xD2);
  for (int iter = 0; iter < 60; ++iter) {
    // Small periods keep hyperperiods simulable.
    std::vector<ConstrainedTask> ts;
    for (int i = 0; i < 3; ++i) {
      const std::int64_t period = rng.uniform_int(4, 12);
      const std::int64_t deadline = rng.uniform_int(2, period);
      const std::int64_t exec = rng.uniform_int(1, deadline);
      ts.push_back(ConstrainedTask{exec, deadline, period});
    }
    const Rational speed(rng.uniform_int(4, 10), 4);
    const bool analytic = edf_dbf_feasible_exact(ts, speed);
    const SimOutcome sim =
        simulate_uniproc_constrained(ts, speed, SchedPolicy::kEdf);
    ASSERT_FALSE(sim.horizon_exhausted);
    EXPECT_EQ(analytic, sim.schedulable)
        << "speed " << speed.to_string() << " tasks: "
        << ts[0].exec << "/" << ts[0].deadline << "/" << ts[0].period;
  }
}

// Sporadic arrivals with slack are never harder than synchronous: if the
// synchronous pattern meets deadlines, every jittered pattern does too.
TEST_P(DbfPropertyTest, SynchronousIsWorstCase) {
  Rng rng(GetParam() ^ 0xD3);
  for (int iter = 0; iter < 40; ++iter) {
    std::vector<ConstrainedTask> ts;
    for (int i = 0; i < 3; ++i) {
      const std::int64_t period = rng.uniform_int(4, 12);
      const std::int64_t deadline = rng.uniform_int(2, period);
      const std::int64_t exec = rng.uniform_int(1, deadline);
      ts.push_back(ConstrainedTask{exec, deadline, period});
    }
    const Rational speed(rng.uniform_int(4, 10), 4);
    if (!simulate_uniproc_constrained(ts, speed, SchedPolicy::kEdf)
             .schedulable) {
      continue;
    }
    SimLimits limits;
    limits.horizon_override = 500;
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      EXPECT_TRUE(simulate_uniproc_constrained(
                      ts, speed, SchedPolicy::kEdf, limits,
                      ArrivalModel::jittered(seed, 0.4))
                      .schedulable);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DbfPropertyTest,
                         ::testing::Values(3u, 6u, 9u, 12u, 15u));

// ------------------------------------------------- constrained partitioner

TEST(ConstrainedPartition, PlacesAndValidates) {
  const std::vector<ConstrainedTask> ts{
      {2, 4, 10}, {3, 6, 12}, {1, 2, 8}, {4, 10, 20}};
  const Platform platform = Platform::from_speeds({1.0, 1.0});
  const auto res = first_fit_partition_constrained(
      ts, platform, DbfAdmission::kExactQpa, 1.0);
  ASSERT_TRUE(res.feasible);
  // Every machine's final set passes the exact test.
  for (std::size_t j = 0; j < platform.size(); ++j) {
    EXPECT_TRUE(edf_dbf_feasible_exact(res.tasks_per_machine[j],
                                       platform.speed_exact(j)));
  }
}

TEST(ConstrainedPartition, ApproxAdmissionIsMoreConservative) {
  Rng rng(99);
  int qpa_accepts = 0, approx_accepts = 0;
  for (int iter = 0; iter < 40; ++iter) {
    const auto ts = random_constrained(rng, 6);
    const Platform platform = Platform::from_speeds({1.0, 2.0});
    const bool qpa = first_fit_partition_constrained(
                         ts, platform, DbfAdmission::kExactQpa, 1.0)
                         .feasible;
    const bool approx = first_fit_partition_constrained(
                            ts, platform, DbfAdmission::kApproxLinear, 1.0)
                            .feasible;
    qpa_accepts += qpa;
    approx_accepts += approx;
  }
  EXPECT_GE(qpa_accepts, approx_accepts);
  EXPECT_GT(approx_accepts, 0);
}

TEST(ConstrainedPartition, FailureReportsTask) {
  const std::vector<ConstrainedTask> ts{{5, 5, 10}, {5, 5, 10}, {5, 5, 10}};
  const Platform platform = Platform::from_speeds({1.0});
  const auto res = first_fit_partition_constrained(
      ts, platform, DbfAdmission::kExactQpa, 1.0);
  EXPECT_FALSE(res.feasible);
  EXPECT_TRUE(res.failed_task.has_value());
}

TEST(ConstrainedPartition, AlphaHelps) {
  const std::vector<ConstrainedTask> ts{{5, 5, 10}, {5, 5, 10}};
  const Platform platform = Platform::from_speeds({1.0});
  EXPECT_FALSE(first_fit_partition_constrained(ts, platform,
                                               DbfAdmission::kExactQpa, 1.0)
                   .feasible);
  EXPECT_TRUE(first_fit_partition_constrained(ts, platform,
                                              DbfAdmission::kExactQpa, 2.0)
                  .feasible);
}

}  // namespace
}  // namespace hetsched
