// Verifies every arithmetic inequality the paper's proofs rest on
// (partition/analysis_constants.h).  If any of these fail, the constants in
// Sections IV/V do not close the case analysis.
#include "partition/analysis_constants.h"

#include <gtest/gtest.h>

#include <cmath>

namespace hetsched {
namespace {

// ------------------------------------------------------------------- EDF

TEST(EdfConstants, FastCaseMarginExceedsOne) {
  // Paper: (alpha-1)(1/2 + 1/(2 c_f) - 1/(c_s c_f)) ~= 1.005 > 1.
  EXPECT_GT(edf_fast_case_margin(), 1.0);
  EXPECT_NEAR(edf_fast_case_margin(), 1.005, 0.01);
}

TEST(EdfConstants, SlowShareMarginExceedsOne) {
  // Lemma IV.5: alpha c_f f_f (1 - f_w) / 2 > 1.
  EXPECT_GT(edf_slow_share_margin(), 1.0);
}

TEST(EdfConstants, MediumFractionBoundIsAValidFraction) {
  const double f = edf_medium_fraction_bound();
  EXPECT_GT(f, 0.0);
  EXPECT_LE(f, 1.0);
}

TEST(EdfConstants, SlowCaseMarginExceedsOne) {
  // Lemma IV.4: f_{i,m} f_w alpha / 2 > 1.
  EXPECT_GT(edf_slow_case_margin(), 1.0);
}

TEST(EdfConstants, MarginsFailBelowTheClaimedAlpha) {
  // The constants are tight: dropping alpha by ~2% breaks the fast case,
  // showing 2.98 is essentially the best this constant set proves.
  EXPECT_LT(edf_fast_case_margin(2.90), 1.0);
}

TEST(EdfConstants, PartitionedAlphaIsTwo) {
  EXPECT_DOUBLE_EQ(EdfConstants::kAlphaPartitioned, 2.0);
}

TEST(EdfConstants, CsAboveTwoMakesCorollaryIv3Valid) {
  // Corollary IV.3 needs 1 - 1/c_s >= 1/2, i.e. c_s >= 2.
  EXPECT_GT(EdfConstants::kCs, 2.0);
}

// ------------------------------------------------------------------- RMS

TEST(RmsConstants, LoadFloorIsSqrt2Minus1) {
  EXPECT_NEAR(rms_load_floor(), std::sqrt(2.0) - 1.0, 1e-15);
}

TEST(RmsConstants, PartitionedAlphaIsInverseLoadFloor) {
  EXPECT_NEAR(RmsConstants::kAlphaPartitioned, 2.414213562, 1e-8);
  EXPECT_NEAR(RmsConstants::kAlphaPartitioned * rms_load_floor(), 1.0, 1e-12);
}

TEST(RmsConstants, FastCaseMarginExceedsOne) {
  // Paper: (alpha-1)(sqrt2-1 + (ln2 - 1/c_s)/c_f) ~= 1.004 > 1.
  EXPECT_GT(rms_fast_case_margin(), 1.0);
  EXPECT_NEAR(rms_fast_case_margin(), 1.004, 0.01);
}

TEST(RmsConstants, SlowShareMarginExceedsOne) {
  // Lemma V.5: (sqrt2-1) alpha c_f f_f (1-f_w) ~= 1.003 > 1.
  EXPECT_GT(rms_slow_share_margin(), 1.0);
  EXPECT_NEAR(rms_slow_share_margin(), 1.004, 0.01);
}

TEST(RmsConstants, SlowCaseMarginExceedsOne) {
  // Lemma V.4: (sqrt2-1) f_{i,m} f_w alpha > 1.
  EXPECT_GT(rms_slow_case_margin(), 1.0);
}

TEST(RmsConstants, FastLoadFloorPositive) {
  // Lemma V.2 coefficient ln2 - 1/c_s must be positive for the fast-machine
  // load bound to say anything.
  EXPECT_GT(rms_fast_load_floor(), 0.0);
  EXPECT_NEAR(rms_fast_load_floor(), std::log(2.0) - 0.5, 1e-12);
}

TEST(RmsConstants, MarginsFailBelowClaimedAlpha) {
  EXPECT_LT(rms_fast_case_margin(3.25), 1.0);
}

TEST(RmsConstants, LiuLaylandInequalityOfLemmaV3) {
  // Lemma V.3's key step: (k+1)/k (sqrt2 - 1) <= (k+1)(2^{1/(k+1)} - 1)
  // for all k >= 1.
  for (int k = 1; k <= 100; ++k) {
    const double lhs = (k + 1.0) / k * (std::sqrt(2.0) - 1.0);
    const double rhs = (k + 1.0) * (std::exp2(1.0 / (k + 1.0)) - 1.0);
    EXPECT_LE(lhs, rhs + 1e-12) << "k=" << k;
  }
}

TEST(Constants, OrderingBetweenAdversaries) {
  // Against the weaker (partitioned) adversary the guarantee must be
  // stronger: alpha_partitioned < alpha_lp, and both improve prior art
  // (3.0 EDF / 3.41 RMS).
  EXPECT_LT(EdfConstants::kAlphaPartitioned, EdfConstants::kAlphaLp);
  EXPECT_LT(RmsConstants::kAlphaPartitioned, RmsConstants::kAlphaLp);
  EXPECT_LT(EdfConstants::kAlphaLp, 3.0);
  EXPECT_LT(RmsConstants::kAlphaLp, 3.41);
}

}  // namespace
}  // namespace hetsched
