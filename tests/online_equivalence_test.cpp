// Randomized property test: replaying a task set through the online
// controller in canonical utilization-descending order is bit-identical to
// first_fit_partition, under both engines and every admission kind, across
// 500 seeded instances.  This is the contract the batch wrapper rests on —
// the two paths must never drift apart, or every theorem-level certificate
// the batch test emits would silently stop covering the online service.
#include <gtest/gtest.h>

#include <vector>

#include "gen/platform_gen.h"
#include "gen/taskset_gen.h"
#include "online/online_partitioner.h"
#include "partition/first_fit.h"
#include "util/rng.h"

namespace hetsched {
namespace {

Platform random_platform(Rng& rng) {
  const std::size_t m = static_cast<std::size_t>(rng.uniform_int(1, 12));
  switch (rng.uniform_int(0, 2)) {
    case 0:
      return Platform::identical(m);
    case 1:
      return geometric_platform(m, rng.uniform(1.0, 2.5));
    default:
      return big_little_platform((m + 1) / 2, m / 2 + 1, 1.0,
                                 rng.uniform(1.5, 4.0));
  }
}

TaskSet random_taskset(Rng& rng, const Platform& platform) {
  TasksetSpec spec;
  spec.n = static_cast<std::size_t>(rng.uniform_int(1, 40));
  spec.max_task_utilization = platform.max_speed();
  // Straddle the acceptance boundary so the sample is rich in rejections.
  const double norm = rng.uniform(0.4, 1.15);
  spec.total_utilization =
      std::min(norm * platform.total_speed(),
               0.35 * static_cast<double>(spec.n) * spec.max_task_utilization);
  spec.periods = PeriodSpec::log_uniform(10, 1000);
  return generate_taskset(rng, spec);
}

// Replays `tasks` through a fresh controller in canonical order, stopping
// at the first rejection exactly as the batch algorithm does, and asserts
// the replay reproduces `batch` bit for bit.
void expect_replay_matches(const TaskSet& tasks, const Platform& platform,
                           AdmissionKind kind, double alpha,
                           PartitionEngine engine,
                           const PartitionResult& batch) {
  OnlinePartitioner c(platform, kind, alpha, engine);
  c.reserve(tasks.size());
  bool feasible = true;
  std::vector<std::size_t> assignment(tasks.size(), 0);
  for (const std::size_t i : tasks.order_by_utilization_desc()) {
    const AdmitDecision d = c.admit(tasks[i]);
    if (!d.admitted) {
      feasible = false;
      ASSERT_TRUE(batch.failed_task.has_value());
      EXPECT_EQ(*batch.failed_task, i);
      EXPECT_EQ(batch.failed_utilization, d.utilization);
      break;
    }
    assignment[i] = d.machine;
  }
  ASSERT_EQ(feasible, batch.feasible);
  if (!feasible) return;
  ASSERT_EQ(batch.assignment.size(), tasks.size());
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    EXPECT_EQ(assignment[i], batch.assignment[i]) << "task " << i;
  }
  for (std::size_t j = 0; j < platform.size(); ++j) {
    EXPECT_EQ(c.machine_utilization(j), batch.machine_utilization[j])
        << "machine " << j;
    ASSERT_EQ(c.machine_task_count(j), batch.tasks_per_machine[j].size());
    const std::vector<Task> online = c.machine_tasks(j);
    for (std::size_t k = 0; k < online.size(); ++k) {
      EXPECT_EQ(online[k], batch.tasks_per_machine[j][k]);
    }
  }
}

TEST(OnlineEquivalence, ReplayMatchesBatchOver500Instances) {
  const AdmissionKind kinds[] = {
      AdmissionKind::kEdf, AdmissionKind::kRmsLiuLayland,
      AdmissionKind::kRmsHyperbolic, AdmissionKind::kRmsResponseTime};
  const double alphas[] = {1.0, 1.3, 2.0, 2.98};
  Rng rng(0x0511E);
  for (int iter = 0; iter < 500; ++iter) {
    const Platform platform = random_platform(rng);
    const TaskSet tasks = random_taskset(rng, platform);
    const AdmissionKind kind = kinds[iter % 4];
    const double alpha = alphas[static_cast<std::size_t>(
        rng.uniform_int(0, 3))];
    SCOPED_TRACE("iter " + std::to_string(iter) + " kind " + to_string(kind) +
                 " alpha " + std::to_string(alpha));
    for (const PartitionEngine engine :
         {PartitionEngine::kNaive, PartitionEngine::kSegmentTree}) {
      const PartitionResult batch =
          first_fit_partition(tasks, platform, kind, alpha, engine);
      expect_replay_matches(tasks, platform, kind, alpha, engine, batch);
      // The decision-only scratch path agrees too.
      PartitionScratch scratch;
      EXPECT_EQ(
          first_fit_accepts(tasks, platform, kind, alpha, scratch, engine),
          batch.feasible);
    }
  }
}

TEST(OnlineEquivalence, ReplayAfterChurnStillMatchesBatchOnResidents) {
  // Admit, depart a pseudo-random subset, then check the survivors: a fresh
  // batch run over exactly the resident multiset must be accepted (every
  // resident passed its own admission test), and re-admitting the residents
  // into a fresh controller in canonical order must succeed as well.
  Rng rng(0xC0FFEE);
  for (int iter = 0; iter < 60; ++iter) {
    const Platform platform = random_platform(rng);
    const TaskSet tasks = random_taskset(rng, platform);
    OnlinePartitioner c(platform, AdmissionKind::kEdf, 1.0);
    std::vector<OnlineTaskId> admitted;
    for (const Task& t : tasks) {
      const AdmitDecision d = c.admit(t);
      if (d.admitted) admitted.push_back(d.id);
    }
    for (const OnlineTaskId id : admitted) {
      if (rng.uniform(0.0, 1.0) < 0.5) {
        ASSERT_TRUE(c.depart(id));
      }
    }
    std::vector<Task> residents;
    for (std::size_t j = 0; j < platform.size(); ++j) {
      for (const Task& t : c.machine_tasks(j)) residents.push_back(t);
    }
    if (residents.empty()) continue;
    // Survivors need not pack under the canonical order (first fit is not
    // optimal), but per-machine admission invariants must hold: replaying
    // each machine's residents onto that machine alone must be accepted.
    for (std::size_t j = 0; j < platform.size(); ++j) {
      const std::vector<Task> on_j = c.machine_tasks(j);
      if (on_j.empty()) continue;
      const std::vector<Rational> solo_speed{platform.speed_exact(j)};
      const Platform solo = Platform::from_speeds_exact(solo_speed);
      EXPECT_TRUE(first_fit_accepts(TaskSet(on_j), solo, AdmissionKind::kEdf,
                                    1.0))
          << "machine " << j << " iter " << iter;
    }
  }
}

}  // namespace
}  // namespace hetsched
