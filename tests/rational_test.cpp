// Unit tests for exact rational arithmetic (util/rational.h).
#include "util/rational.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <sstream>
#include <vector>

#include "util/rng.h"

namespace hetsched {
namespace {

TEST(Rational, DefaultIsZero) {
  Rational r;
  EXPECT_TRUE(r.is_zero());
  EXPECT_EQ(r.num(), 0);
  EXPECT_EQ(r.den(), 1);
}

TEST(Rational, ReducesToLowestTerms) {
  Rational r(6, 4);
  EXPECT_EQ(r.num(), 3);
  EXPECT_EQ(r.den(), 2);
}

TEST(Rational, NormalizesSignToNumerator) {
  Rational r(3, -6);
  EXPECT_EQ(r.num(), -1);
  EXPECT_EQ(r.den(), 2);
  EXPECT_TRUE(r.is_negative());
}

TEST(Rational, ZeroNumeratorCanonical) {
  Rational r(0, -17);
  EXPECT_EQ(r.num(), 0);
  EXPECT_EQ(r.den(), 1);
}

TEST(Rational, IntegerConversion) {
  Rational r = 7;
  EXPECT_TRUE(r.is_integer());
  EXPECT_DOUBLE_EQ(r.to_double(), 7.0);
}

TEST(Rational, AdditionExact) {
  EXPECT_EQ(Rational(1, 3) + Rational(1, 6), Rational(1, 2));
}

TEST(Rational, SubtractionExact) {
  EXPECT_EQ(Rational(1, 2) - Rational(1, 3), Rational(1, 6));
}

TEST(Rational, MultiplicationExact) {
  EXPECT_EQ(Rational(2, 3) * Rational(9, 4), Rational(3, 2));
}

TEST(Rational, DivisionExact) {
  EXPECT_EQ(Rational(2, 3) / Rational(4, 9), Rational(3, 2));
}

TEST(Rational, UnaryMinus) {
  EXPECT_EQ(-Rational(2, 5), Rational(-2, 5));
  EXPECT_EQ(-Rational(-2, 5), Rational(2, 5));
}

TEST(Rational, ComparisonOrdering) {
  EXPECT_LT(Rational(1, 3), Rational(1, 2));
  EXPECT_GT(Rational(-1, 3), Rational(-1, 2));
  EXPECT_LE(Rational(2, 4), Rational(1, 2));
  EXPECT_EQ(Rational(2, 4), Rational(1, 2));
}

TEST(Rational, FloorCeil) {
  EXPECT_EQ(Rational(7, 2).floor(), 3);
  EXPECT_EQ(Rational(7, 2).ceil(), 4);
  EXPECT_EQ(Rational(-7, 2).floor(), -4);
  EXPECT_EQ(Rational(-7, 2).ceil(), -3);
  EXPECT_EQ(Rational(6, 2).floor(), 3);
  EXPECT_EQ(Rational(6, 2).ceil(), 3);
}

TEST(Rational, ToStringFormats) {
  EXPECT_EQ(Rational(5).to_string(), "5");
  EXPECT_EQ(Rational(-3, 7).to_string(), "-3/7");
  std::ostringstream os;
  os << Rational(1, 2);
  EXPECT_EQ(os.str(), "1/2");
}

TEST(Rational, LargeIntermediateProductsReduce) {
  // (2^40 / 3) * (3 / 2^40) == 1: the 128-bit intermediate avoids overflow.
  const std::int64_t big = std::int64_t{1} << 40;
  EXPECT_EQ(Rational(big, 3) * Rational(3, big), Rational(1));
}

TEST(Rational, MinMaxHelpers) {
  EXPECT_EQ(rational_min(Rational(1, 3), Rational(1, 4)), Rational(1, 4));
  EXPECT_EQ(rational_max(Rational(1, 3), Rational(1, 4)), Rational(1, 3));
}

TEST(Rational, FromDoubleExactOnGrid) {
  EXPECT_EQ(rational_from_double(0.5), Rational(1, 2));
  EXPECT_EQ(rational_from_double(2.75), Rational(11, 4));
  EXPECT_EQ(rational_from_double(3.0), Rational(3));
  EXPECT_EQ(rational_from_double(-1.25), Rational(-5, 4));
}

TEST(Rational, FromDoubleRecoverSmallFractions) {
  for (std::int64_t den = 1; den <= 50; ++den) {
    for (std::int64_t num = 0; num <= 2 * den; ++num) {
      const double x =
          static_cast<double>(num) / static_cast<double>(den);
      EXPECT_EQ(rational_from_double(x), Rational(num, den))
          << num << "/" << den;
    }
  }
}

TEST(Rational, FromDoubleApproximatesIrrational) {
  const Rational r = rational_from_double(3.14159265358979, 1'000'000);
  EXPECT_NEAR(r.to_double(), 3.14159265358979, 1e-10);
  EXPECT_LE(r.den(), 1'000'000);
}

// Boundary behaviour at the int64 extremes.  Every product funnels through
// reduce128, so values survive as long as the REDUCED result fits — and the
// overflow CHECK must fire (not wrap) the moment it does not.  CI runs this
// suite under UBSan, which would flag any signed wraparound on the way.
constexpr std::int64_t kI64Max = std::numeric_limits<std::int64_t>::max();
constexpr std::int64_t kI64Min = std::numeric_limits<std::int64_t>::min();

TEST(Rational, MulNearInt64MaxReducesThroughInt128) {
  // (kMax/2) * (2/kMax) == 1: the intermediate products kMax*2 and 2*kMax
  // exceed int64 and only survive because reduction happens at 128 bits.
  const Rational a(kI64Max, 2);
  const Rational b(2, kI64Max);
  EXPECT_EQ(a * b, Rational(1));
  // Widest representable magnitudes round-trip through self-division.
  const Rational big(kI64Max, 1);
  EXPECT_EQ(big / big, Rational(1));
  EXPECT_EQ(big * Rational(1, kI64Max), Rational(1));
  // Sum with matching denominator stays exactly representable.
  EXPECT_EQ(Rational(kI64Max - 1, 2) + Rational(1, 2), Rational(kI64Max, 2));
}

TEST(Rational, OverflowAfterReductionAborts) {
  const Rational big(kI64Max, 1);
  EXPECT_DEATH(big * big, "overflow after reduction");
  EXPECT_DEATH(big + Rational(1), "overflow after reduction");
  // 1/kMin reduces to -1/2^63, whose denominator does not fit.
  EXPECT_DEATH(Rational(1, kI64Min), "overflow after reduction");
}

TEST(Rational, NegationOfInt64MinAborts) {
  const Rational lowest(kI64Min, 1);
  EXPECT_DEATH(-lowest, "num_");
  // One above the edge is fine.
  EXPECT_EQ(-Rational(kI64Min + 1, 1), Rational(kI64Max, 1));
}

TEST(Rational, NegativeDenominatorAtBoundaryNormalizes) {
  // kMin + 1 == -kMax, so the sign flip lands exactly on the edge.
  const Rational r(kI64Max, kI64Min + 1);
  EXPECT_EQ(r.num(), -1);
  EXPECT_EQ(r.den(), 1);
  const Rational s(1, -kI64Max);
  EXPECT_EQ(s.num(), -1);
  EXPECT_EQ(s.den(), kI64Max);
}

TEST(Rational, ComparisonWidensThroughInt128) {
  // Cross products kMax * kMax would overflow int64; ordering must still
  // be exact.
  const Rational a(kI64Max, kI64Max - 2);
  const Rational b(kI64Max - 1, kI64Max - 2);
  EXPECT_LT(b, a);
  EXPECT_GT(Rational(kI64Max, 1), Rational(kI64Max - 1, 1));
  EXPECT_LT(Rational(kI64Min + 1, 1), Rational(kI64Min + 2, 1));
}

// Property: field axioms hold on random small rationals.
class RationalPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RationalPropertyTest, AlgebraicLaws) {
  Rng rng(GetParam());
  for (int iter = 0; iter < 200; ++iter) {
    auto draw = [&rng] {
      return Rational(rng.uniform_int(-1000, 1000), rng.uniform_int(1, 1000));
    };
    const Rational a = draw(), b = draw(), c = draw();
    EXPECT_EQ(a + b, b + a);
    EXPECT_EQ(a * b, b * a);
    EXPECT_EQ((a + b) + c, a + (b + c));
    EXPECT_EQ(a * (b + c), a * b + a * c);
    EXPECT_EQ(a - a, Rational(0));
    if (!b.is_zero()) {
      EXPECT_EQ((a / b) * b, a);
    }
    // Round trip through double stays close (doubles have ~1e-16 rel. err).
    EXPECT_NEAR((a + b).to_double(), a.to_double() + b.to_double(), 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RationalPropertyTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

}  // namespace
}  // namespace hetsched
