// Unit tests for the task model (core/task.h).
#include "core/task.h"

#include <gtest/gtest.h>

#include <vector>

namespace hetsched {
namespace {

TEST(Task, UtilizationDoubleAndExactAgree) {
  const Task t{3, 12};
  EXPECT_DOUBLE_EQ(t.utilization(), 0.25);
  EXPECT_EQ(t.utilization_exact(), Rational(1, 4));
}

TEST(Task, ValidityChecks) {
  EXPECT_TRUE((Task{1, 1}).valid());
  EXPECT_FALSE((Task{0, 5}).valid());
  EXPECT_FALSE((Task{5, 0}).valid());
  EXPECT_FALSE((Task{-1, 5}).valid());
}

TEST(TaskSet, TotalUtilization) {
  const TaskSet ts({{1, 4}, {1, 2}, {1, 4}});
  EXPECT_DOUBLE_EQ(ts.total_utilization(), 1.0);
  EXPECT_EQ(ts.total_utilization_exact(), Rational(1));
}

TEST(TaskSet, MaxUtilization) {
  const TaskSet ts({{1, 10}, {3, 4}, {1, 2}});
  EXPECT_DOUBLE_EQ(ts.max_utilization(), 0.75);
}

TEST(TaskSet, EmptySet) {
  const TaskSet ts;
  EXPECT_TRUE(ts.empty());
  EXPECT_DOUBLE_EQ(ts.total_utilization(), 0.0);
  EXPECT_DOUBLE_EQ(ts.max_utilization(), 0.0);
  EXPECT_TRUE(ts.order_by_utilization_desc().empty());
}

TEST(TaskSet, OrderByUtilizationDescending) {
  const TaskSet ts({{1, 10}, {1, 2}, {1, 4}});  // w = .1, .5, .25
  const auto order = ts.order_by_utilization_desc();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 1u);
  EXPECT_EQ(order[1], 2u);
  EXPECT_EQ(order[2], 0u);
}

TEST(TaskSet, OrderBreaksTiesByIndex) {
  // Equal utilizations expressed with different integers: 2/4 == 1/2.
  const TaskSet ts({{2, 4}, {1, 2}, {3, 6}});
  const auto order = ts.order_by_utilization_desc();
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2}));
}

TEST(TaskSet, OrderIsExactNotFloating) {
  // (10^9+1)/(3*10^9+3) > 10^9/(3*10^9+2)? Left = 1/3 exactly; right is
  // slightly less.  Doubles cannot distinguish; exact comparison must.
  const TaskSet ts({{1'000'000'000, 3'000'000'002},
                    {1'000'000'001, 3'000'000'003}});
  const auto order = ts.order_by_utilization_desc();
  EXPECT_EQ(order[0], 1u);
  EXPECT_EQ(order[1], 0u);
}

TEST(TaskSet, PushBackAccumulates) {
  TaskSet ts;
  ts.push_back({1, 2});
  ts.push_back({1, 4});
  EXPECT_EQ(ts.size(), 2u);
  EXPECT_DOUBLE_EQ(ts.total_utilization(), 0.75);
}

TEST(TaskSet, IterationAndIndexing) {
  const TaskSet ts({{1, 2}, {3, 4}});
  EXPECT_EQ(ts[1].exec, 3);
  std::size_t count = 0;
  for (const Task& t : ts) {
    EXPECT_TRUE(t.valid());
    ++count;
  }
  EXPECT_EQ(count, 2u);
}

TEST(TaskSet, ToStringMentionsSizeAndTasks) {
  const TaskSet ts({{1, 2}});
  const std::string s = ts.to_string();
  EXPECT_NE(s.find("n=1"), std::string::npos);
  EXPECT_NE(s.find("(1,2)"), std::string::npos);
}

TEST(TaskSetDeathTest, InvalidTaskAborts) {
  EXPECT_DEATH(TaskSet({{0, 1}}), "non-positive");
  TaskSet ts;
  EXPECT_DEATH(ts.push_back({1, -1}), "non-positive");
}

}  // namespace
}  // namespace hetsched
