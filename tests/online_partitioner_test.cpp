// Unit tests for the stateful admission controller: placement, departure,
// id staleness, rebalancing (success, no-op, and the canonical-repack
// failure case), and snapshot/restore what-if probing.
#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "online/online_partitioner.h"
#include "partition/first_fit.h"

namespace hetsched {
namespace {

Platform two_unit_machines() { return Platform::identical(2); }

TEST(OnlinePartitioner, AdmitPlacesFirstFit) {
  OnlinePartitioner c(two_unit_machines(), AdmissionKind::kEdf, 1.0);
  // EDF on a unit machine admits while util_sum <= 1.
  const AdmitDecision a = c.admit({6, 10});  // w = 0.6
  ASSERT_TRUE(a.admitted);
  EXPECT_EQ(a.machine, 0u);
  EXPECT_DOUBLE_EQ(a.utilization, 0.6);

  const AdmitDecision b = c.admit({5, 10});  // w = 0.5: 1.1 > 1, spills
  ASSERT_TRUE(b.admitted);
  EXPECT_EQ(b.machine, 1u);

  const AdmitDecision d = c.admit({4, 10});  // w = 0.4 fits back on 0
  ASSERT_TRUE(d.admitted);
  EXPECT_EQ(d.machine, 0u);

  EXPECT_EQ(c.resident_count(), 3u);
  EXPECT_DOUBLE_EQ(c.machine_utilization(0), 1.0);
  EXPECT_DOUBLE_EQ(c.machine_utilization(1), 0.5);
  EXPECT_DOUBLE_EQ(c.total_utilization(), 1.5);
}

TEST(OnlinePartitioner, RejectLeavesStateUntouched) {
  OnlinePartitioner c(Platform::identical(1), AdmissionKind::kEdf, 1.0);
  ASSERT_TRUE(c.admit({7, 10}).admitted);
  const AdmitDecision d = c.admit({5, 10});
  EXPECT_FALSE(d.admitted);
  EXPECT_EQ(d.id, kInvalidOnlineTaskId);
  EXPECT_DOUBLE_EQ(d.utilization, 0.5);
  EXPECT_EQ(c.resident_count(), 1u);
  EXPECT_DOUBLE_EQ(c.machine_utilization(0), 0.7);
}

TEST(OnlinePartitioner, DepartReleasesSlack) {
  OnlinePartitioner c(Platform::identical(1), AdmissionKind::kEdf, 1.0);
  const AdmitDecision a = c.admit({7, 10});
  ASSERT_TRUE(a.admitted);
  EXPECT_FALSE(c.admit({5, 10}).admitted);

  ASSERT_TRUE(c.depart(a.id));
  EXPECT_EQ(c.resident_count(), 0u);
  EXPECT_DOUBLE_EQ(c.machine_utilization(0), 0.0);
  EXPECT_TRUE(c.admit({5, 10}).admitted);
}

TEST(OnlinePartitioner, StaleAndBogusIdsAreRejected) {
  OnlinePartitioner c(two_unit_machines(), AdmissionKind::kEdf, 1.0);
  const AdmitDecision a = c.admit({1, 10});
  ASSERT_TRUE(a.admitted);
  ASSERT_TRUE(c.depart(a.id));
  EXPECT_FALSE(c.depart(a.id));  // double depart
  EXPECT_FALSE(c.depart(kInvalidOnlineTaskId));
  EXPECT_FALSE(c.depart(12345));  // never-issued slot

  // The freed slot is reused by the next admit under a new generation, and
  // the old id still does not resolve to it.
  const AdmitDecision b = c.admit({2, 10});
  ASSERT_TRUE(b.admitted);
  EXPECT_NE(a.id, b.id);
  EXPECT_FALSE(c.machine_of(a.id).has_value());
  EXPECT_TRUE(c.machine_of(b.id).has_value());
}

TEST(OnlinePartitioner, ObserversTrackResidents) {
  OnlinePartitioner c(two_unit_machines(), AdmissionKind::kEdf, 1.0);
  const AdmitDecision a = c.admit({6, 10});
  const AdmitDecision b = c.admit({5, 10});
  ASSERT_TRUE(a.admitted && b.admitted);
  EXPECT_EQ(c.machine_of(a.id), std::optional<std::size_t>(0));
  EXPECT_EQ(c.machine_of(b.id), std::optional<std::size_t>(1));
  const auto ta = c.task_of(a.id);
  ASSERT_TRUE(ta.has_value());
  EXPECT_EQ(ta->exec, 6);
  EXPECT_EQ(ta->period, 10);
  EXPECT_EQ(c.machine_task_count(0), 1u);
  const std::vector<Task> on0 = c.machine_tasks(0);
  ASSERT_EQ(on0.size(), 1u);
  EXPECT_EQ(on0[0].exec, 6);
}

TEST(OnlinePartitioner, RebalanceRepacksAfterDepartures) {
  // Fill machine 0 with small tasks, spill a large one to machine 1, then
  // depart the small ones: the canonical repack pulls the large task back
  // to machine 0 (first fit in utilization-descending order).
  OnlinePartitioner c(two_unit_machines(), AdmissionKind::kEdf, 1.0);
  const AdmitDecision s1 = c.admit({4, 10});
  const AdmitDecision s2 = c.admit({4, 10});
  const AdmitDecision big = c.admit({8, 10});
  ASSERT_TRUE(s1.admitted && s2.admitted && big.admitted);
  ASSERT_EQ(big.machine, 1u);
  ASSERT_TRUE(c.depart(s1.id));
  ASSERT_TRUE(c.depart(s2.id));

  const RebalanceReport r = c.rebalance();
  EXPECT_TRUE(r.applied);
  EXPECT_EQ(r.resident, 1u);
  EXPECT_EQ(r.migrations, 1u);
  EXPECT_EQ(c.machine_of(big.id), std::optional<std::size_t>(0));
  EXPECT_DOUBLE_EQ(c.machine_utilization(0), 0.8);
  EXPECT_DOUBLE_EQ(c.machine_utilization(1), 0.0);
}

TEST(OnlinePartitioner, RebalanceNoOpWhenAlreadyCanonical) {
  OnlinePartitioner c(two_unit_machines(), AdmissionKind::kEdf, 1.0);
  ASSERT_TRUE(c.admit({6, 10}).admitted);
  ASSERT_TRUE(c.admit({5, 10}).admitted);
  const RebalanceReport r = c.rebalance();
  EXPECT_TRUE(r.applied);
  EXPECT_EQ(r.resident, 2u);
  EXPECT_EQ(r.migrations, 0u);
}

TEST(OnlinePartitioner, RebalanceFailureLeavesStateIntact) {
  // Online admission reaches {0.4,0.3,0.3} + {0.4,0.3,0.3} on two unit
  // machines, but first fit in canonical order (0.4 0.4 0.3 0.3 0.3 0.3)
  // packs 0.8 + 0.9 and strands the last 0.3 — the classic FFD miss.  The
  // rebalance must report applied=false and change nothing.
  OnlinePartitioner c(two_unit_machines(), AdmissionKind::kEdf, 1.0);
  std::vector<AdmitDecision> d;
  for (const Task& t : std::vector<Task>{
           {4, 10}, {3, 10}, {3, 10}, {4, 10}, {3, 10}, {3, 10}}) {
    d.push_back(c.admit(t));
    ASSERT_TRUE(d.back().admitted);
  }
  ASSERT_EQ(c.machine_task_count(0), 3u);
  ASSERT_EQ(c.machine_task_count(1), 3u);

  const RebalanceReport r = c.rebalance();
  EXPECT_FALSE(r.applied);
  EXPECT_EQ(r.resident, 6u);
  EXPECT_EQ(r.migrations, 0u);
  // State is untouched: same placements, same loads, ids still live.
  EXPECT_DOUBLE_EQ(c.machine_utilization(0), 1.0);
  EXPECT_DOUBLE_EQ(c.machine_utilization(1), 1.0);
  for (std::size_t i = 0; i < d.size(); ++i) {
    EXPECT_EQ(c.machine_of(d[i].id), std::optional<std::size_t>(i < 3 ? 0 : 1));
  }
}

TEST(OnlinePartitioner, SnapshotRestoreWhatIf) {
  OnlinePartitioner c(two_unit_machines(), AdmissionKind::kEdf, 1.0);
  const AdmitDecision a = c.admit({6, 10});
  ASSERT_TRUE(a.admitted);

  const auto snap = c.snapshot();
  // What-if: admit a batch, then roll back.
  ASSERT_TRUE(c.admit({9, 10}).admitted);  // 0.9 spills to machine 1
  const AdmitDecision probe = c.admit({3, 10});
  ASSERT_TRUE(probe.admitted);
  ASSERT_TRUE(c.depart(a.id));
  c.restore(snap);

  EXPECT_EQ(c.resident_count(), 1u);
  EXPECT_DOUBLE_EQ(c.machine_utilization(0), 0.6);
  EXPECT_DOUBLE_EQ(c.machine_utilization(1), 0.0);
  EXPECT_EQ(c.machine_of(a.id), std::optional<std::size_t>(0));
  EXPECT_FALSE(c.machine_of(probe.id).has_value());
  // The controller keeps working after a restore (tree rebuilt).
  EXPECT_TRUE(c.admit({9, 10}).admitted);
}

TEST(OnlinePartitioner, RtaKindRoundTrips) {
  // kRmsResponseTime has no slack form; the controller must still admit,
  // depart, and rebalance through the MachineLoad fallback.
  OnlinePartitioner c(two_unit_machines(), AdmissionKind::kRmsResponseTime,
                      1.0);
  const AdmitDecision a = c.admit({5, 10});
  const AdmitDecision b = c.admit({5, 10});
  const AdmitDecision x = c.admit({4, 12});
  ASSERT_TRUE(a.admitted && b.admitted && x.admitted);
  ASSERT_TRUE(c.depart(a.id));
  EXPECT_TRUE(c.rebalance().applied);
  // The controller's verdicts still match the batch wrapper on the
  // remaining residents (same code path via first_fit_partition).
  std::vector<Task> rest;
  for (std::size_t j = 0; j < c.machine_count(); ++j) {
    for (const Task& t : c.machine_tasks(j)) rest.push_back(t);
  }
  EXPECT_TRUE(first_fit_accepts(TaskSet(rest), c.platform(),
                                AdmissionKind::kRmsResponseTime, 1.0));
}

TEST(OnlinePartitioner, ToStringMentionsKindAndResidents) {
  OnlinePartitioner c(two_unit_machines(), AdmissionKind::kEdf, 2.0);
  ASSERT_TRUE(c.admit({5, 10}).admitted);
  const std::string s = c.to_string();
  EXPECT_NE(s.find("EDF"), std::string::npos);
  EXPECT_NE(s.find("resident=1"), std::string::npos);
}

}  // namespace
}  // namespace hetsched
