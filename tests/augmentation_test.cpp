// Unit tests for the augmentation-requirement studies
// (experiments/augmentation.h).
#include "experiments/augmentation.h"

#include <gtest/gtest.h>

#include "partition/analysis_constants.h"

namespace hetsched {
namespace {

AugmentationStudySpec small_spec() {
  AugmentationStudySpec spec;
  spec.platform = Platform::from_speeds({1.0, 2.0});
  spec.taskset.n = 6;
  spec.taskset.total_utilization = 1.0;  // overwritten per trial
  spec.taskset.periods = PeriodSpec::uniform(50, 500);
  spec.norm_lo = 0.4;
  spec.norm_hi = 0.95;
  spec.trials = 60;
  spec.seed = 77;
  spec.kind = AdmissionKind::kEdf;
  return spec;
}

TEST(AugmentationVsLp, ProducesAlphasWithinTheoremBound) {
  const AugmentationStudyResult res = augmentation_vs_lp(small_spec());
  EXPECT_GT(res.adversary_feasible, 0u);
  EXPECT_EQ(res.search_failures, 0u);
  ASSERT_FALSE(res.alphas.empty());
  // Theorem I.3: every LP-feasible instance is accepted by alpha = 2.98.
  EXPECT_LE(res.summary.max, EdfConstants::kAlphaLp + 1e-6);
  EXPECT_GE(res.summary.min, 1.0 - 1e-12);
}

TEST(AugmentationVsLp, SummaryConsistentWithSamples) {
  const AugmentationStudyResult res = augmentation_vs_lp(small_spec());
  EXPECT_EQ(res.summary.count, res.alphas.size());
  EXPECT_EQ(res.alphas.size() + res.search_failures, res.adversary_feasible);
}

TEST(AugmentationVsPartitioned, WithinTheoremI1Bound) {
  AugmentationStudySpec spec = small_spec();
  spec.trials = 40;
  const AugmentationStudyResult res = augmentation_vs_partitioned(spec);
  EXPECT_GT(res.adversary_feasible, 0u);
  ASSERT_FALSE(res.alphas.empty());
  // Theorem I.1: alpha* <= 2 against the exact partitioned adversary.
  EXPECT_LE(res.summary.max, EdfConstants::kAlphaPartitioned + 1e-6);
}

TEST(AugmentationVsPartitioned, RmsWithinTheoremI2Bound) {
  AugmentationStudySpec spec = small_spec();
  spec.trials = 40;
  spec.kind = AdmissionKind::kRmsLiuLayland;
  const AugmentationStudyResult res = augmentation_vs_partitioned(spec);
  ASSERT_FALSE(res.alphas.empty());
  // Theorem I.2: alpha* <= 1/(sqrt2 - 1) ~= 2.414.
  EXPECT_LE(res.summary.max, RmsConstants::kAlphaPartitioned + 1e-6);
}

TEST(Augmentation, DeterministicAcrossRuns) {
  const AugmentationStudyResult a = augmentation_vs_lp(small_spec());
  const AugmentationStudyResult b = augmentation_vs_lp(small_spec());
  EXPECT_EQ(a.adversary_feasible, b.adversary_feasible);
  EXPECT_EQ(a.summary.count, b.summary.count);
  EXPECT_DOUBLE_EQ(a.summary.max, b.summary.max);
}

}  // namespace
}  // namespace hetsched
