// Unit tests for the deterministic RNG (util/rng.h).
#include "util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

namespace hetsched {
namespace {

TEST(Rng, DeterministicForFixedSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_LE(same, 1);
}

TEST(Rng, ZeroSeedIsUsable) {
  Rng r(0);
  // SplitMix64 seeding must avoid the all-zero xoshiro state.
  std::set<std::uint64_t> vals;
  for (int i = 0; i < 16; ++i) vals.insert(r.next_u64());
  EXPECT_GT(vals.size(), 10u);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = r.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, NextDoubleMeanNearHalf) {
  Rng r(11);
  double sum = 0;
  const int kN = 100000;
  for (int i = 0; i < kN; ++i) sum += r.next_double();
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(Rng, UniformIntRangeInclusive) {
  Rng r(3);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t v = r.uniform_int(-2, 5);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 5);
    saw_lo |= (v == -2);
    saw_hi |= (v == 5);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformIntDegenerate) {
  Rng r(5);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(r.uniform_int(42, 42), 42);
}

TEST(Rng, UniformIntUnbiasedChiSquared) {
  Rng r(17);
  constexpr int kBuckets = 10;
  constexpr int kDraws = 100000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kDraws; ++i) {
    ++counts[static_cast<std::size_t>(r.uniform_int(0, kBuckets - 1))];
  }
  const double expected = static_cast<double>(kDraws) / kBuckets;
  double chi2 = 0;
  for (const int c : counts) {
    chi2 += (c - expected) * (c - expected) / expected;
  }
  // 9 dof, 99.9th percentile ~= 27.9.
  EXPECT_LT(chi2, 27.9);
}

TEST(Rng, LogUniformWithinBoundsAndLogSpread) {
  Rng r(23);
  int low_decade = 0, high_decade = 0;
  for (int i = 0; i < 10000; ++i) {
    const double v = r.log_uniform(10.0, 1000.0);
    EXPECT_GE(v, 10.0);
    EXPECT_LE(v, 1000.0);
    if (v < 100.0) ++low_decade;
    else ++high_decade;
  }
  // Log-uniform: each decade gets ~half the mass.
  EXPECT_NEAR(static_cast<double>(low_decade) / 10000.0, 0.5, 0.05);
  EXPECT_NEAR(static_cast<double>(high_decade) / 10000.0, 0.5, 0.05);
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng r(29);
  double sum = 0;
  const int kN = 100000;
  for (int i = 0; i < kN; ++i) sum += r.exponential(2.0);
  EXPECT_NEAR(sum / kN, 0.5, 0.02);
}

TEST(Rng, BernoulliProbability) {
  Rng r(31);
  int hits = 0;
  const int kN = 100000;
  for (int i = 0; i < kN; ++i) hits += r.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / kN, 0.3, 0.01);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent(101);
  Rng child = parent.fork();
  // The child stream should not replay the parent's output.
  Rng parent2(101);
  (void)parent2.next_u64();  // consume the value that seeded the child
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (child.next_u64() == parent2.next_u64());
  EXPECT_LE(same, 1);
}

TEST(Rng, ShufflePermutesAllElements) {
  Rng r(37);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  r.shuffle(v);
  std::vector<int> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, orig);
}

TEST(Rng, ShuffleUniformFirstPosition) {
  // Over many shuffles of {0..3}, each value lands in slot 0 ~25%.
  Rng r(41);
  std::vector<int> counts(4, 0);
  const int kN = 40000;
  for (int i = 0; i < kN; ++i) {
    std::vector<int> v{0, 1, 2, 3};
    r.shuffle(v);
    ++counts[static_cast<std::size_t>(v[0])];
  }
  for (const int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / kN, 0.25, 0.02);
  }
}

TEST(SplitMix, KnownGoodSequenceIsDeterministic) {
  SplitMix64 a(99), b(99);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(a.next(), b.next());
}

}  // namespace
}  // namespace hetsched
