// Unit tests for the acceptance-ratio sweep harness
// (experiments/acceptance.h).
#include "experiments/acceptance.h"

#include <gtest/gtest.h>

#include "partition/first_fit.h"

namespace hetsched {
namespace {

AcceptanceSweepSpec small_spec() {
  AcceptanceSweepSpec spec;
  spec.platform = Platform::from_speeds({1.0, 1.0, 2.0});
  spec.tasks_per_set = 8;
  spec.normalized_utilizations = {0.3, 0.9};
  spec.trials_per_point = 50;
  spec.seed = 1234;
  return spec;
}

std::vector<Tester> ff_edf_testers() {
  return {
      Tester::make_first_fit("ff-edf@1", AdmissionKind::kEdf, 1.0),
      Tester::make_first_fit("ff-edf@3", AdmissionKind::kEdf, 3.0),
  };
}

TEST(AcceptanceSweep, ShapeMatchesSpec) {
  const AcceptanceCurve curve =
      run_acceptance_sweep(small_spec(), ff_edf_testers());
  ASSERT_EQ(curve.points.size(), 2u);
  ASSERT_EQ(curve.tester_names.size(), 2u);
  for (const AcceptancePoint& pt : curve.points) {
    ASSERT_EQ(pt.acceptance.size(), 2u);
    ASSERT_EQ(pt.ci95.size(), 2u);
    for (const double a : pt.acceptance) {
      EXPECT_GE(a, 0.0);
      EXPECT_LE(a, 1.0);
    }
  }
}

TEST(AcceptanceSweep, HigherAlphaNeverLowersAcceptanceMuch) {
  // ff-edf@3 dominates ff-edf@1 statistically (monotone in alpha on random
  // instances); allow a tiny slack for the (never observed) anomaly case.
  const AcceptanceCurve curve =
      run_acceptance_sweep(small_spec(), ff_edf_testers());
  for (const AcceptancePoint& pt : curve.points) {
    EXPECT_GE(pt.acceptance[1] + 1e-9, pt.acceptance[0]);
  }
}

TEST(AcceptanceSweep, LowUtilizationEasyHighUtilizationHard) {
  const AcceptanceCurve curve =
      run_acceptance_sweep(small_spec(), ff_edf_testers());
  // At 30% load with alpha=3 everything is accepted.
  EXPECT_DOUBLE_EQ(curve.points[0].acceptance[1], 1.0);
  // At 90% load with alpha=1 acceptance is below 1.
  EXPECT_LT(curve.points[1].acceptance[0], 1.0);
}

TEST(AcceptanceSweep, DeterministicAcrossRuns) {
  const AcceptanceCurve a = run_acceptance_sweep(small_spec(), ff_edf_testers());
  const AcceptanceCurve b = run_acceptance_sweep(small_spec(), ff_edf_testers());
  for (std::size_t p = 0; p < a.points.size(); ++p) {
    for (std::size_t k = 0; k < a.points[p].acceptance.size(); ++k) {
      EXPECT_DOUBLE_EQ(a.points[p].acceptance[k], b.points[p].acceptance[k]);
    }
  }
}

TEST(AcceptanceSweep, TableRendering) {
  const AcceptanceCurve curve =
      run_acceptance_sweep(small_spec(), ff_edf_testers());
  const Table t = curve.to_table();
  EXPECT_EQ(t.rows(), 2u);
  const std::string s = t.render();
  EXPECT_NE(s.find("ff-edf@1"), std::string::npos);
  EXPECT_NE(s.find("U/S"), std::string::npos);
}

}  // namespace
}  // namespace hetsched
