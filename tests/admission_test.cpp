// Unit tests for per-machine admission (partition/admission.h).
#include "partition/admission.h"

#include <gtest/gtest.h>

#include "core/uniproc.h"

namespace hetsched {
namespace {

TEST(Admission, EdfAdmitsUpToCapacity) {
  MachineLoad load(AdmissionKind::kEdf, Rational(1), 2.0);  // capacity 2
  EXPECT_TRUE(load.can_admit({1, 1}));   // w = 1
  load.admit({1, 1});
  EXPECT_TRUE(load.can_admit({1, 1}));   // total would be 2 == capacity
  load.admit({1, 1});
  EXPECT_FALSE(load.can_admit({1, 100}));  // any extra load overflows
}

TEST(Admission, EdfCapacityIsAlphaTimesSpeed) {
  MachineLoad load(AdmissionKind::kEdf, Rational(1, 2), 3.0);
  EXPECT_DOUBLE_EQ(load.capacity(), 1.5);
  EXPECT_TRUE(load.can_admit({3, 2}));    // w = 1.5 fits exactly
  EXPECT_FALSE(load.can_admit({8, 5}));   // w = 1.6
}

TEST(Admission, RmsLlUsesCountAwareBound) {
  MachineLoad load(AdmissionKind::kRmsLiuLayland, Rational(1), 1.0);
  // One task of w = 0.9 passes (bound 1.0)...
  EXPECT_TRUE(load.can_admit({9, 10}));
  load.admit({9, 10});
  // ...but even a tiny second task fails: 0.9 + eps > 2(sqrt2-1) ~ 0.828.
  EXPECT_FALSE(load.can_admit({1, 100}));
}

TEST(Admission, RmsLlAdmitsWithinLn2ManyTasks) {
  MachineLoad load(AdmissionKind::kRmsLiuLayland, Rational(1), 1.0);
  // 6 tasks of w = 0.1: 0.6 <= LL(6) ~ 0.735.
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(load.can_admit({1, 10})) << i;
    load.admit({1, 10});
  }
  EXPECT_EQ(load.task_count(), 6u);
  EXPECT_NEAR(load.utilization(), 0.6, 1e-12);
}

TEST(Admission, RmsHyperbolicAdmitsMoreThanLl) {
  // Skewed set accepted by hyperbolic but not LL (see uniproc tests).
  MachineLoad hb(AdmissionKind::kRmsHyperbolic, Rational(1), 1.0);
  MachineLoad ll(AdmissionKind::kRmsLiuLayland, Rational(1), 1.0);
  const Task big{6, 10}, small{1, 10};
  ASSERT_TRUE(hb.can_admit(big));
  hb.admit(big);
  ASSERT_TRUE(ll.can_admit(big));
  ll.admit(big);
  ASSERT_TRUE(hb.can_admit(small));
  hb.admit(small);
  ASSERT_TRUE(ll.can_admit(small));
  ll.admit(small);
  // Third task: hyperbolic 1.6*1.1*1.1 = 1.936 <= 2 passes; LL 0.8 > 0.78.
  EXPECT_TRUE(hb.can_admit(small));
  EXPECT_FALSE(ll.can_admit(small));
}

TEST(Admission, RtaIsExactOnHarmonicSet) {
  // (1,2),(1,4),(1,8): U = 0.875; LL rejects at the third task, exact RTA
  // accepts all three.
  MachineLoad rta(AdmissionKind::kRmsResponseTime, Rational(1), 1.0);
  MachineLoad ll(AdmissionKind::kRmsLiuLayland, Rational(1), 1.0);
  const Task t1{1, 2}, t2{1, 4}, t3{1, 8};
  ASSERT_TRUE(rta.can_admit(t1));
  rta.admit(t1);
  ASSERT_TRUE(rta.can_admit(t2));
  rta.admit(t2);
  EXPECT_TRUE(rta.can_admit(t3));

  ASSERT_TRUE(ll.can_admit(t1));
  ll.admit(t1);
  ASSERT_TRUE(ll.can_admit(t2));
  ll.admit(t2);
  EXPECT_FALSE(ll.can_admit(t3));
}

TEST(Admission, RtaRespectsAugmentedSpeed) {
  // (3,5),(3,7) needs speedup (see rta tests); alpha = 2 on speed 1.
  MachineLoad fast(AdmissionKind::kRmsResponseTime, Rational(1), 2.0);
  const Task t1{3, 5}, t2{3, 7};
  ASSERT_TRUE(fast.can_admit(t1));
  fast.admit(t1);
  EXPECT_TRUE(fast.can_admit(t2));

  MachineLoad slow(AdmissionKind::kRmsResponseTime, Rational(1), 1.0);
  ASSERT_TRUE(slow.can_admit(t1));
  slow.admit(t1);
  EXPECT_FALSE(slow.can_admit(t2));
}

TEST(Admission, TracksTasksAndUtilization) {
  MachineLoad load(AdmissionKind::kEdf, Rational(2), 1.0);
  load.admit({1, 2});
  load.admit({1, 4});
  EXPECT_EQ(load.task_count(), 2u);
  EXPECT_DOUBLE_EQ(load.utilization(), 0.75);
  ASSERT_EQ(load.tasks().size(), 2u);
  EXPECT_EQ(load.tasks()[0], (Task{1, 2}));
}

TEST(Admission, KindNames) {
  EXPECT_EQ(to_string(AdmissionKind::kEdf), "EDF");
  EXPECT_EQ(to_string(AdmissionKind::kRmsLiuLayland), "RMS-LL");
  EXPECT_EQ(to_string(AdmissionKind::kRmsHyperbolic), "RMS-HB");
  EXPECT_EQ(to_string(AdmissionKind::kRmsResponseTime), "RMS-RTA");
  EXPECT_FALSE(is_rms(AdmissionKind::kEdf));
  EXPECT_TRUE(is_rms(AdmissionKind::kRmsLiuLayland));
  EXPECT_TRUE(is_rms(AdmissionKind::kRmsResponseTime));
}

}  // namespace
}  // namespace hetsched
