// Tests for the local-search repair partitioner (baselines/local_search.h).
#include "baselines/local_search.h"

#include <gtest/gtest.h>

#include "core/uniproc.h"
#include "exact/exact_partition.h"
#include "gen/platform_gen.h"
#include "gen/taskset_gen.h"
#include "util/rng.h"

namespace hetsched {
namespace {

TEST(LocalSearch, AcceptsWhateverFirstFitAccepts) {
  Rng rng(1);
  for (int iter = 0; iter < 30; ++iter) {
    TasksetSpec spec;
    spec.n = 12;
    spec.total_utilization = rng.uniform(1.0, 3.5);
    const TaskSet tasks = generate_taskset(rng, spec);
    const Platform platform = Platform::from_speeds({0.5, 1.0, 1.5, 2.0});
    if (first_fit_accepts(tasks, platform, AdmissionKind::kEdf, 1.0)) {
      EXPECT_TRUE(local_search_partition(tasks, platform, AdmissionKind::kEdf,
                                         1.0)
                      .feasible);
    }
  }
}

TEST(LocalSearch, RepairsTheSeparatingInstance) {
  // First-fit strands the 0.16 task; moving 0.20 from machine 1 to machine
  // 0 will not fit (0.86 + 0.20 > 1) but a swap does.
  const TaskSet tasks({{44, 100}, {42, 100}, {40, 100},
                       {38, 100}, {20, 100}, {16, 100}});
  const Platform platform = Platform::from_speeds({1.0, 1.0});
  ASSERT_FALSE(first_fit_accepts(tasks, platform, AdmissionKind::kEdf, 1.0));
  const LocalSearchResult res =
      local_search_partition(tasks, platform, AdmissionKind::kEdf, 1.0);
  EXPECT_TRUE(res.feasible);
  EXPECT_GT(res.moves + res.swaps, 0u);
  // Validate the assignment.
  std::vector<double> load(platform.size(), 0.0);
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    ASSERT_LT(res.assignment[i], platform.size());
    load[res.assignment[i]] += tasks[i].utilization();
  }
  for (std::size_t j = 0; j < platform.size(); ++j) {
    EXPECT_LE(load[j], platform.speed(j) + 1e-9);
  }
}

TEST(LocalSearch, StillRejectsTrulyInfeasible) {
  const TaskSet tasks({{1, 1}, {1, 1}, {1, 1}});
  const Platform platform = Platform::from_speeds({1.0, 1.0});
  EXPECT_FALSE(
      local_search_partition(tasks, platform, AdmissionKind::kEdf, 1.0)
          .feasible);
}

TEST(LocalSearch, WorksWithRmsAdmission) {
  Rng rng(3);
  TasksetSpec spec;
  spec.n = 10;
  spec.total_utilization = 2.0;
  const TaskSet tasks = generate_taskset(rng, spec);
  const Platform platform = Platform::from_speeds({1.0, 1.0, 2.0});
  const LocalSearchResult res = local_search_partition(
      tasks, platform, AdmissionKind::kRmsLiuLayland, 1.5);
  // Whatever the verdict, an accepted assignment must be LL-admissible.
  if (res.feasible) {
    std::vector<std::vector<Task>> per(platform.size());
    for (std::size_t i = 0; i < tasks.size(); ++i) {
      per[res.assignment[i]].push_back(tasks[i]);
    }
    for (std::size_t j = 0; j < platform.size(); ++j) {
      double sum = 0;
      for (const Task& t : per[j]) sum += t.utilization();
      EXPECT_TRUE(
          rms_ll_feasible(sum, per[j].size(), 1.5 * platform.speed(j)));
    }
  }
}

// Local search is sandwiched: at least first-fit, at most the exact search.
class LocalSearchPropertyTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LocalSearchPropertyTest, SandwichedBetweenFirstFitAndExact) {
  Rng rng(GetParam());
  int ff_acc = 0, ls_acc = 0, exact_acc = 0;
  for (int iter = 0; iter < 60; ++iter) {
    const Platform platform = geometric_platform(3, rng.uniform(1.0, 2.0));
    TasksetSpec spec;
    spec.n = 9;
    spec.max_task_utilization = platform.max_speed();
    spec.total_utilization =
        std::min(rng.uniform(0.6, 1.0) * platform.total_speed(),
                 0.35 * 9 * spec.max_task_utilization);
    spec.periods = PeriodSpec::uniform(50, 1000);
    const TaskSet tasks = generate_taskset(rng, spec);

    const bool ff = first_fit_accepts(tasks, platform, AdmissionKind::kEdf, 1.0);
    const bool ls =
        local_search_partition(tasks, platform, AdmissionKind::kEdf, 1.0)
            .feasible;
    const ExactResult ex =
        exact_partition(tasks, platform, AdmissionKind::kEdf);
    ASSERT_NE(ex.verdict, ExactVerdict::kNodeLimit);
    const bool exact = ex.verdict == ExactVerdict::kFeasible;

    if (ff) {
      EXPECT_TRUE(ls);
    }
    if (ls) {
      EXPECT_TRUE(exact);
    }
    ff_acc += ff;
    ls_acc += ls;
    exact_acc += exact;
  }
  EXPECT_LE(ff_acc, ls_acc);
  EXPECT_LE(ls_acc, exact_acc);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LocalSearchPropertyTest,
                         ::testing::Values(31u, 62u, 93u, 124u, 155u));

}  // namespace
}  // namespace hetsched
