// Unit tests for summary statistics (util/stats.h).
#include "util/stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace hetsched {
namespace {

TEST(Stats, MeanBasic) {
  const std::vector<double> xs{1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
}

TEST(Stats, MeanEmptyIsZero) {
  EXPECT_DOUBLE_EQ(mean(std::vector<double>{}), 0.0);
}

TEST(Stats, StddevKnownValue) {
  const std::vector<double> xs{2, 4, 4, 4, 5, 5, 7, 9};
  // Sample variance = 32/7.
  EXPECT_NEAR(sample_stddev(xs), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(Stats, StddevDegenerate) {
  EXPECT_DOUBLE_EQ(sample_stddev(std::vector<double>{5.0}), 0.0);
  EXPECT_DOUBLE_EQ(sample_stddev(std::vector<double>{}), 0.0);
}

TEST(Stats, MinMax) {
  const std::vector<double> xs{3, -1, 7, 2};
  EXPECT_DOUBLE_EQ(min_of(xs), -1);
  EXPECT_DOUBLE_EQ(max_of(xs), 7);
}

TEST(Stats, PercentileEndpoints) {
  const std::vector<double> xs{10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(percentile(xs, 0), 10);
  EXPECT_DOUBLE_EQ(percentile(xs, 100), 40);
}

TEST(Stats, PercentileInterpolates) {
  const std::vector<double> xs{10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(percentile(xs, 50), 25);
}

TEST(Stats, PercentileUnsortedInput) {
  const std::vector<double> xs{40, 10, 30, 20};
  EXPECT_DOUBLE_EQ(percentile(xs, 100), 40);
  EXPECT_DOUBLE_EQ(percentile(xs, 0), 10);
}

TEST(Stats, SummarizeCountsAndOrder) {
  const std::vector<double> xs{1, 5, 3};
  const Summary s = summarize(xs);
  EXPECT_EQ(s.count, 3u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(s.p50, 3.0);
  EXPECT_FALSE(s.to_string().empty());
  EXPECT_NE(s.to_string().find("p999="), std::string::npos);
}

TEST(Stats, SummarizePercentilesMatchPercentileFn) {
  std::vector<double> xs;
  for (int i = 0; i < 2000; ++i) xs.push_back(static_cast<double>(i % 997));
  const Summary s = summarize(xs);
  EXPECT_DOUBLE_EQ(s.p50, percentile(xs, 50));
  EXPECT_DOUBLE_EQ(s.p95, percentile(xs, 95));
  EXPECT_DOUBLE_EQ(s.p99, percentile(xs, 99));
  EXPECT_DOUBLE_EQ(s.p999, percentile(xs, 99.9));
  EXPECT_GE(s.p999, s.p99);
}

TEST(Stats, SummarizeEmpty) {
  const Summary s = summarize(std::vector<double>{});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

TEST(Stats, ProportionCiShrinksWithTrials) {
  const double wide = proportion_ci95(50, 100);
  const double narrow = proportion_ci95(5000, 10000);
  EXPECT_GT(wide, narrow);
  EXPECT_NEAR(wide, 1.96 * std::sqrt(0.25 / 100), 1e-3);
}

TEST(Stats, ProportionCiDegenerate) {
  EXPECT_DOUBLE_EQ(proportion_ci95(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(proportion_ci95(0, 100), 0.0);
  EXPECT_DOUBLE_EQ(proportion_ci95(100, 100), 0.0);
}

TEST(Stats, BootstrapCiCoversMean) {
  std::vector<double> xs;
  for (int i = 0; i < 200; ++i) xs.push_back(static_cast<double>(i % 10));
  Rng rng(55);
  const Interval ci = bootstrap_mean_ci95(xs, rng);
  EXPECT_LE(ci.lo, mean(xs));
  EXPECT_GE(ci.hi, mean(xs));
  EXPECT_LT(ci.hi - ci.lo, 1.5);
}

TEST(Histogram, BinningAndClamping) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.5);   // bin 0
  h.add(9.99);  // bin 4
  h.add(-3.0);  // clamped to bin 0
  h.add(42.0);  // clamped to bin 4
  h.add(5.0);   // bin 2 (boundary goes right)
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(2), 1u);
  EXPECT_EQ(h.bin_count(4), 2u);
}

TEST(Histogram, BinEdges) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_lo(4), 8.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(4), 10.0);
}

TEST(Histogram, ToStringHasOneLinePerBin) {
  Histogram h(0.0, 1.0, 3);
  h.add(0.1);
  const std::string s = h.to_string();
  EXPECT_EQ(std::count(s.begin(), s.end(), '\n'), 3);
}

}  // namespace
}  // namespace hetsched
