// Unit tests for exact response-time analysis (core/rta.h).
#include "core/rta.h"

#include <gtest/gtest.h>

#include <vector>

namespace hetsched {
namespace {

TEST(RmOrder, SortsByPeriodWithIndexTieBreak) {
  const std::vector<Task> tasks{{1, 10}, {1, 5}, {2, 5}};
  const auto order = rm_priority_order(tasks);
  EXPECT_EQ(order, (std::vector<std::size_t>{1, 2, 0}));
}

TEST(Rta, SingleTaskResponseIsExecOverSpeed) {
  const std::vector<Task> tasks{{3, 10}};
  const auto r = rm_response_time(tasks, 0, Rational(1));
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(*r, Rational(3));
}

TEST(Rta, SingleTaskOnFasterMachine) {
  const std::vector<Task> tasks{{3, 10}};
  const auto r = rm_response_time(tasks, 0, Rational(2));
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(*r, Rational(3, 2));
}

TEST(Rta, ClassicTwoTaskExample) {
  // tau1 = (1, 4), tau2 = (2, 6) on unit speed.
  // R1 = 1.  R2: 2 + ceil(2/4)*1 = 3; 2 + ceil(3/4)*1 = 3. So R2 = 3.
  const std::vector<Task> tasks{{1, 4}, {2, 6}};
  EXPECT_EQ(rm_response_time(tasks, 0, Rational(1)), Rational(1));
  EXPECT_EQ(rm_response_time(tasks, 1, Rational(1)), Rational(3));
}

TEST(Rta, InterferenceAccumulatesAcrossReleases) {
  // tau1 = (2, 4), tau2 = (2, 10):
  // R2: 2+2=4; 2+ceil(4/4)*2=4 -> wait ceil(4/4)=1 -> 4? But at R=4 a new
  // tau1 job releases at exactly 4; ceil(4/4)=1 keeps R=4, which is the
  // standard fixed point (release at t is not counted in [0, t)).
  const std::vector<Task> tasks{{2, 4}, {2, 10}};
  EXPECT_EQ(rm_response_time(tasks, 1, Rational(1)), Rational(4));
}

TEST(Rta, UnschedulableTaskReturnsNullopt) {
  // tau1 = (3, 5), tau2 = (3, 7): R2 = 3 + ceil(R/5)*3 grows past 7.
  const std::vector<Task> tasks{{3, 5}, {3, 7}};
  EXPECT_TRUE(rm_response_time(tasks, 0, Rational(1)).has_value());
  EXPECT_FALSE(rm_response_time(tasks, 1, Rational(1)).has_value());
}

TEST(Rta, SpeedupRescuesUnschedulableSet) {
  const std::vector<Task> tasks{{3, 5}, {3, 7}};
  EXPECT_FALSE(rta_schedulable(tasks, Rational(1)));
  EXPECT_TRUE(rta_schedulable(tasks, Rational(2)));
}

TEST(Rta, LiuLaylandCriticalExampleSchedulableExactly) {
  // The classic full-utilization RM set: (1,2),(1,4),(1,8) has U = 0.875 >
  // LL(3) but is RM-schedulable (harmonic periods).
  const std::vector<Task> tasks{{1, 2}, {1, 4}, {1, 8}};
  EXPECT_TRUE(rta_schedulable(tasks, Rational(1)));
}

TEST(Rta, FullUtilizationHarmonicBoundary) {
  // (1,2),(1,4),(2,8): U = 1.0 exactly, harmonic, RM-schedulable.
  const std::vector<Task> tasks{{1, 2}, {1, 4}, {2, 8}};
  EXPECT_TRUE(rta_schedulable(tasks, Rational(1)));
}

TEST(Rta, JustOverFullUtilizationFails) {
  const std::vector<Task> tasks{{1, 2}, {1, 4}, {3, 8}};  // U = 1.125
  EXPECT_FALSE(rta_schedulable(tasks, Rational(1)));
}

TEST(Rta, FractionalSpeedExactness) {
  // On speed 1/3, task (1, 3) has response time exactly 3 == deadline.
  const std::vector<Task> tasks{{1, 3}};
  const auto r = rm_response_time(tasks, 0, Rational(1, 3));
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(*r, Rational(3));
  // One tick less speed and it misses.
  EXPECT_FALSE(rm_response_time(tasks, 0, Rational(33, 100)).has_value());
}

TEST(Rta, EqualPeriodsUseIndexTieBreak) {
  // Two tasks with equal periods: the first has higher priority.
  const std::vector<Task> tasks{{2, 10}, {2, 10}};
  EXPECT_EQ(rm_response_time(tasks, 0, Rational(1)), Rational(2));
  EXPECT_EQ(rm_response_time(tasks, 1, Rational(1)), Rational(4));
}

TEST(Rta, EmptySetSchedulable) {
  EXPECT_TRUE(rta_schedulable(std::vector<Task>{}, Rational(1)));
}

TEST(Rta, RtaAcceptsWhereLiuLaylandIsConservative) {
  // U = 0.875 harmonic set from above: the LL bound (0.7798) rejects but
  // exact analysis accepts — the gap bench E8 quantifies.
  const std::vector<Task> tasks{{1, 2}, {1, 4}, {1, 8}};
  double sum = 0;
  for (const Task& t : tasks) sum += t.utilization();
  EXPECT_GT(sum, 0.78);
  EXPECT_TRUE(rta_schedulable(tasks, Rational(1)));
}

}  // namespace
}  // namespace hetsched
