// Unit tests for platform generation (gen/platform_gen.h).
#include "gen/platform_gen.h"

#include <gtest/gtest.h>

namespace hetsched {
namespace {

TEST(QuantizeSpeed, ExactOnGrid) {
  EXPECT_EQ(quantize_speed(1.0), Rational(1));
  EXPECT_EQ(quantize_speed(0.5), Rational(1, 2));
  EXPECT_EQ(quantize_speed(1.015625), Rational(65, 64));  // 1 + 1/64
}

TEST(QuantizeSpeed, NeverBelowOneTick) {
  EXPECT_EQ(quantize_speed(1e-9), Rational(1, kSpeedGrid));
}

TEST(QuantizeSpeed, RoundsToNearest) {
  // 0.7 * 64 = 44.8 -> 45/64.
  EXPECT_EQ(quantize_speed(0.7), Rational(45, 64));
}

TEST(UniformPlatform, SizesAndBounds) {
  Rng rng(1);
  const Platform p = uniform_platform(rng, 16, 0.5, 4.0);
  EXPECT_EQ(p.size(), 16u);
  for (std::size_t j = 0; j < p.size(); ++j) {
    EXPECT_GE(p.speed(j), 0.5 - 1.0 / kSpeedGrid);
    EXPECT_LE(p.speed(j), 4.0 + 1.0 / kSpeedGrid);
  }
}

TEST(UniformPlatform, SortedAscending) {
  Rng rng(2);
  const Platform p = uniform_platform(rng, 10, 1.0, 8.0);
  for (std::size_t j = 1; j < p.size(); ++j) {
    EXPECT_LE(p.speed(j - 1), p.speed(j));
  }
}

TEST(GeometricPlatform, RatioLadder) {
  const Platform p = geometric_platform(4, 2.0);
  EXPECT_DOUBLE_EQ(p.speed(0), 1.0);
  EXPECT_DOUBLE_EQ(p.speed(1), 2.0);
  EXPECT_DOUBLE_EQ(p.speed(2), 4.0);
  EXPECT_DOUBLE_EQ(p.speed(3), 8.0);
}

TEST(GeometricPlatform, NormalizedTotal) {
  const Platform p = geometric_platform(4, 2.0, 30.0);
  EXPECT_NEAR(p.total_speed(), 30.0, 4.0 / kSpeedGrid);
}

TEST(GeometricPlatform, RatioOneIsIdentical) {
  const Platform p = geometric_platform(5, 1.0);
  for (std::size_t j = 0; j < 5; ++j) EXPECT_DOUBLE_EQ(p.speed(j), 1.0);
}

TEST(BigLittlePlatform, TwoClusters) {
  const Platform p = big_little_platform(4, 2, 1.0, 3.0);
  ASSERT_EQ(p.size(), 6u);
  for (std::size_t j = 0; j < 4; ++j) EXPECT_DOUBLE_EQ(p.speed(j), 1.0);
  for (std::size_t j = 4; j < 6; ++j) EXPECT_DOUBLE_EQ(p.speed(j), 3.0);
}

TEST(BigLittlePlatform, OnlyBigCluster) {
  const Platform p = big_little_platform(0, 3, 1.0, 2.5);
  EXPECT_EQ(p.size(), 3u);
  EXPECT_DOUBLE_EQ(p.min_speed(), 2.5);
}

TEST(ScalePlatform, MultipliesSpeeds) {
  const Platform p = Platform::from_speeds({1.0, 2.0});
  const Platform q = scale_platform(p, 0.5);
  EXPECT_DOUBLE_EQ(q.speed(0), 0.5);
  EXPECT_DOUBLE_EQ(q.speed(1), 1.0);
}

TEST(ScalePlatform, PreservesIds) {
  const Platform p = Platform::from_speeds({2.0, 1.0});
  const Platform q = scale_platform(p, 2.0);
  EXPECT_EQ(q[0].id, p[0].id);
  EXPECT_EQ(q[1].id, p[1].id);
}

}  // namespace
}  // namespace hetsched
