// Tests for the protocol-minor-2 introspection surfaces, end to end:
// traced request framing and its compatibility with minor-1 peers, the
// variable-length info-frame codec, GET_STATS / GET_TRACEZ over a live
// loopback server, the HTTP side port (/metrics, /healthz), and the
// per-shard flight recorder wired through the server.
//
// Span-content assertions are gated on HETSCHED_METRICS_ENABLED: the
// frames, status codes, and HTTP endpoints must work identically in OFF
// builds (where tracez bodies are simply empty) — that invariance is the
// kill-switch contract for the introspection plane.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include "gen/platform_gen.h"
#include "net/client.h"
#include "net/http_introspect.h"
#include "net/protocol.h"
#include "net/server.h"
#include "obs/flight_recorder.h"
#include "obs/span.h"

namespace hetsched::net {
namespace {

// ---------------------------------------------------------------------
// Wire compatibility (protocol minor 2).
// ---------------------------------------------------------------------

TEST(NetProtocolMinor2, TracedRequestRoundTrips) {
  const Request r = Request::admit(3, 77, 5, 20).traced(0xABCDEF12345678ULL);
  unsigned char buf[kTracedFrameSize];
  ASSERT_EQ(encode_request(r, buf), kTracedFrameSize);
  Request out;
  std::size_t consumed = 0;
  ASSERT_EQ(decode_request(buf, kTracedFrameSize, &out, &consumed),
            DecodeResult::kOk);
  EXPECT_EQ(consumed, kTracedFrameSize);
  EXPECT_EQ(out.trace_id, 0xABCDEF12345678ULL);
  EXPECT_EQ(out.type, MsgType::kAdmit);
  EXPECT_EQ(out.shard, 3u);
  EXPECT_EQ(out.request_id, 77u);
  EXPECT_EQ(out.a, 5u);
  EXPECT_EQ(out.b, 20u);
}

// An untraced request must emit the EXACT minor-1 wire image — the frame
// a pre-tracing client sends and a pre-tracing server expects.  Pinning
// the header bytes here keeps the compat promise a compile-visible fact.
TEST(NetProtocolMinor2, UntracedFrameKeepsTheMinor1Layout) {
  const Request r = Request::admit(3, 77, 5, 20);
  unsigned char buf[kTracedFrameSize];
  ASSERT_EQ(encode_request(r, buf), kFrameSize);
  // u32 LE payload length = kPayloadSize (32), then version, then type.
  EXPECT_EQ(buf[0], 32u);
  EXPECT_EQ(buf[1], 0u);
  EXPECT_EQ(buf[2], 0u);
  EXPECT_EQ(buf[3], 0u);
  EXPECT_EQ(buf[4], kProtocolVersion);
  EXPECT_EQ(buf[5], static_cast<unsigned char>(MsgType::kAdmit));
  // A minor-2 decoder reads it back as trace id 0 (untraced).
  Request out;
  std::size_t consumed = 0;
  ASSERT_EQ(decode_request(buf, kFrameSize, &out, &consumed),
            DecodeResult::kOk);
  EXPECT_EQ(consumed, kFrameSize);
  EXPECT_EQ(out.trace_id, 0u);
}

// Each Request has exactly one wire image: a 40-byte payload whose trace
// id field is zero is NOT the canonical form of an untraced request, so
// the decoder rejects it rather than aliasing two encodings.
TEST(NetProtocolMinor2, ZeroTraceIdInExtendedPayloadRejected) {
  const Request r = Request::admit(0, 1, 2, 10).traced(7);
  unsigned char buf[kTracedFrameSize];
  ASSERT_EQ(encode_request(r, buf), kTracedFrameSize);
  std::memset(buf + kFrameSize, 0, 8);  // zero the trace id field
  Request out;
  std::size_t consumed = 0;
  EXPECT_EQ(decode_request(buf, kTracedFrameSize, &out, &consumed),
            DecodeResult::kBad);
}

TEST(NetProtocolMinor2, IntrospectionFactories) {
  const Request gs = Request::get_stats(41);
  EXPECT_EQ(gs.type, MsgType::kGetStats);
  EXPECT_EQ(gs.request_id, 41u);
  const Request gt = Request::get_tracez(42, 12);
  EXPECT_EQ(gt.type, MsgType::kGetTracez);
  EXPECT_EQ(gt.request_id, 42u);
  EXPECT_EQ(gt.tracez_slowest(), 12u);
}

TEST(NetProtocolMinor2, InfoResponseRoundTrips) {
  InfoResponse in;
  in.type = MsgType::kGetTracez;
  in.request_id = 99;
  in.value = 3;
  in.text = "{\"trace_id\":1}\n{\"trace_id\":2}\n";
  std::vector<unsigned char> frame;
  encode_info_response(in, &frame);
  ASSERT_EQ(frame.size(), kHeaderSize + kInfoPrefixSize + in.text.size());

  InfoResponse out;
  std::size_t consumed = 0;
  ASSERT_EQ(decode_info_response(frame.data(), frame.size(), &out, &consumed),
            DecodeResult::kOk);
  EXPECT_EQ(consumed, frame.size());
  EXPECT_EQ(out.type, MsgType::kGetTracez);
  EXPECT_EQ(out.request_id, 99u);
  EXPECT_EQ(out.value, 3u);
  EXPECT_EQ(out.text, in.text);

  // Every strict prefix needs more bytes — never a bogus decode.
  for (std::size_t len = 0; len < frame.size(); len += 7) {
    EXPECT_EQ(decode_info_response(frame.data(), len, &out, &consumed),
              DecodeResult::kNeedMore)
        << "len " << len;
  }
}

TEST(NetProtocolMinor2, InfoResponseTruncatesAtTheTextCap) {
  InfoResponse in;
  in.type = MsgType::kGetStats;
  in.request_id = 1;
  in.text.assign(kMaxInfoText + 4096, 'x');
  std::vector<unsigned char> frame;
  encode_info_response(in, &frame);
  InfoResponse out;
  std::size_t consumed = 0;
  ASSERT_EQ(decode_info_response(frame.data(), frame.size(), &out, &consumed),
            DecodeResult::kOk);
  EXPECT_EQ(out.text.size(), kMaxInfoText);  // capped, still decodable
}

// ---------------------------------------------------------------------
// Loopback integration.
// ---------------------------------------------------------------------

std::string loopback_addr(const Server& server) {
  return "127.0.0.1:" + std::to_string(server.port());
}

// Old-client compat over a live server: untraced (minor-1) frames and
// traced frames interleave on one connection; decisions and statuses
// must not depend on the tracing dressing.
TEST(IntrospectLoopback, TracedAndUntracedFramesInterleave) {
  obs::span_drain();  // clear anything earlier tests recorded
  obs::set_span_enabled(true);
  const Platform pf = geometric_platform(4, 1.5);
  ServerOptions opts;
  opts.shards = 1;
  Server server(pf, opts);
  std::string err;
  ASSERT_TRUE(server.start(&err)) << err;

  Client client;
  ASSERT_TRUE(client.connect(loopback_addr(server), 2000, &err)) << err;
  Response r;
  ASSERT_TRUE(client.call(Request::admit(0, 1, 1, 10).traced(0xF00D), &r,
                          2000));
  EXPECT_EQ(r.status, Status::kAdmitted);
  const std::uint64_t traced_task = r.task_id;
  ASSERT_TRUE(client.call(Request::admit(0, 2, 1, 10), &r, 2000));
  EXPECT_EQ(r.status, Status::kAdmitted);
  ASSERT_TRUE(client.call(Request::depart(0, 3, traced_task).traced(0xF00E),
                          &r, 2000));
  EXPECT_EQ(r.status, Status::kDeparted);

  server.request_stop();
  server.wait();
  obs::set_span_enabled(false);

#if HETSCHED_METRICS_ENABLED
  // The traced frames left spans behind; the untraced one did not.
  const std::vector<obs::SpanRecord> spans = obs::span_drain();
  ASSERT_FALSE(spans.empty());
  std::set<std::uint64_t> traces;
  std::set<obs::SpanStage> stages;
  for (const obs::SpanRecord& sp : spans) {
    traces.insert(sp.trace_id);
    stages.insert(sp.stage);
  }
  EXPECT_EQ(traces.count(0xF00D), 1u);
  EXPECT_EQ(traces.count(0xF00E), 1u);
  EXPECT_EQ(traces.size(), 2u);  // nothing from the untraced admit
  // The inline path records at least decode -> warm-admit -> encode ->
  // group-commit -> sendmsg for each traced frame.
  EXPECT_EQ(stages.count(obs::SpanStage::kDecode), 1u);
  EXPECT_EQ(stages.count(obs::SpanStage::kWarmAdmit), 1u);
  EXPECT_EQ(stages.count(obs::SpanStage::kEncode), 1u);
  EXPECT_EQ(stages.count(obs::SpanStage::kGroupCommit), 1u);
  EXPECT_EQ(stages.count(obs::SpanStage::kSendmsg), 1u);
  for (const obs::SpanRecord& sp : spans) {
    EXPECT_LE(sp.t0_ns, sp.t1_ns) << to_string(sp.stage);
    EXPECT_NE(sp.span_id, 0u);
  }
#else
  EXPECT_TRUE(obs::span_drain().empty());  // kill switch: no spans, ever
#endif
}

TEST(IntrospectLoopback, GetStatsAnswersPrometheusText) {
  const Platform pf = geometric_platform(4, 1.5);
  ServerOptions opts;
  opts.shards = 2;
  Server server(pf, opts);
  std::string err;
  ASSERT_TRUE(server.start(&err)) << err;
  Client client;
  ASSERT_TRUE(client.connect(loopback_addr(server), 2000, &err)) << err;
  Response r;
  ASSERT_TRUE(client.call(Request::admit(0, 1, 1, 10), &r, 2000));

  InfoResponse info;
  ASSERT_TRUE(client.call_info(Request::get_stats(77), &info, 2000))
      << client.last_error();
  EXPECT_EQ(info.type, MsgType::kGetStats);
  EXPECT_EQ(info.request_id, 77u);
  EXPECT_NE(info.text.find("# TYPE hetsched_server_frames_rx_total counter"),
            std::string::npos);
  EXPECT_NE(info.text.find("hetsched_server_admitted_total 1"),
            std::string::npos);
  // The SLO burn families are present per shard in every build mode.
  EXPECT_NE(info.text.find("hetsched_net_slo_ok_total{shard=\"0\"}"),
            std::string::npos);
  EXPECT_NE(info.text.find("hetsched_net_slo_breach_total{shard=\"1\"}"),
            std::string::npos);
  // Well-formed exposition: every non-comment line is "name[{labels}] value".
  std::size_t start = 0;
  while (start < info.text.size()) {
    std::size_t end = info.text.find('\n', start);
    if (end == std::string::npos) end = info.text.size();
    const std::string line = info.text.substr(start, end - start);
    if (!line.empty() && line[0] != '#') {
      EXPECT_NE(line.find(' '), std::string::npos) << line;
    }
    start = end + 1;
  }
  EXPECT_EQ(server.stats().introspect, 1u);

  server.request_stop();
  server.wait();
}

TEST(IntrospectLoopback, GetTracezAnswersSlowestTracesAsJsonl) {
  obs::span_drain();
  obs::set_span_enabled(true);
  const Platform pf = geometric_platform(4, 1.5);
  ServerOptions opts;
  opts.shards = 1;
  Server server(pf, opts);
  std::string err;
  ASSERT_TRUE(server.start(&err)) << err;
  Client client;
  ASSERT_TRUE(client.connect(loopback_addr(server), 2000, &err)) << err;
  Response r;
  for (std::uint64_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(client.call(Request::admit(0, i, 1, 100).traced(100 + i), &r,
                            2000));
    ASSERT_EQ(r.status, Status::kAdmitted);
  }

  InfoResponse info;
  ASSERT_TRUE(client.call_info(Request::get_tracez(9, 3), &info, 2000))
      << client.last_error();
  EXPECT_EQ(info.type, MsgType::kGetTracez);
  EXPECT_EQ(info.request_id, 9u);
  obs::set_span_enabled(false);

#if HETSCHED_METRICS_ENABLED
  // 4 traces exist; --slowest 3 caps the answer at 3 JSONL lines.
  EXPECT_EQ(info.value, 3u);
  std::size_t lines = 0;
  std::size_t start = 0;
  while (start < info.text.size()) {
    std::size_t end = info.text.find('\n', start);
    ASSERT_NE(end, std::string::npos);  // body ends with a newline
    const std::string line = info.text.substr(start, end - start);
    EXPECT_EQ(line.rfind("{\"trace_id\":1", 0), 0u) << line;  // ids 100+
    EXPECT_NE(line.find("\"spans\":["), std::string::npos);
    EXPECT_NE(line.find("warm-admit"), std::string::npos);
    ++lines;
    start = end + 1;
  }
  EXPECT_EQ(lines, 3u);
#else
  EXPECT_EQ(info.value, 0u);  // kill switch: structurally valid, empty
  EXPECT_TRUE(info.text.empty());
#endif

  server.request_stop();
  server.wait();
}

// The flight recorder captures the last decisions per shard and dumps
// them through the global signal-safe path the SIGUSR1 / crash handlers
// use.  In OFF builds the recording macro is empty, so the dump is too.
TEST(IntrospectLoopback, FlightRecorderCapturesServedDecisions) {
  const Platform pf = geometric_platform(4, 1.5);
  ServerOptions opts;
  opts.shards = 1;
  Server server(pf, opts);
  std::string err;
  ASSERT_TRUE(server.start(&err)) << err;
  Client client;
  ASSERT_TRUE(client.connect(loopback_addr(server), 2000, &err)) << err;
  Response r;
  ASSERT_TRUE(client.call(Request::admit(0, 1, 1, 10).traced(0xBEEF), &r,
                          2000));
  ASSERT_TRUE(client.call(Request::admit(0, 2, 999, 1000), &r, 2000));
  server.request_stop();
  server.wait();  // writer quiescent; shards (and recorders) still live

  const std::string path =
      testing::TempDir() + "/introspect_flight_dump.jsonl";
  ASSERT_TRUE(obs::flight_dump_path(path.c_str()));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
#if HETSCHED_METRICS_ENABLED
  ASSERT_EQ(lines.size(), 2u);  // one entry per decision, same shard ring
  EXPECT_NE(lines[0].find("\"kind\":1"), std::string::npos);
  EXPECT_NE(lines[0].find("\"trace_id\":48879"), std::string::npos);  // 0xBEEF
  EXPECT_NE(lines[1].find("\"request_id\":2"), std::string::npos);
#else
  EXPECT_TRUE(lines.empty());
#endif
}

// ---------------------------------------------------------------------
// HTTP side port.
// ---------------------------------------------------------------------

// Minimal scrape: one GET, read to EOF (the responder closes).
std::string http_get(std::uint16_t port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &sa.sin_addr);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&sa), sizeof sa) != 0) {
    ::close(fd);
    return "";
  }
  const std::string req = "GET " + path + " HTTP/1.0\r\n\r\n";
  (void)!::send(fd, req.data(), req.size(), MSG_NOSIGNAL);
  std::string out;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n <= 0) break;
    out.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return out;
}

TEST(HttpIntrospectTest, ServesMetricsHealthzAnd404) {
  const Platform pf = geometric_platform(4, 1.5);
  ServerOptions opts;
  opts.shards = 1;
  Server server(pf, opts);
  std::string err;
  ASSERT_TRUE(server.start(&err)) << err;
  Client client;
  ASSERT_TRUE(client.connect(loopback_addr(server), 2000, &err)) << err;
  Response r;
  ASSERT_TRUE(client.call(Request::admit(0, 1, 1, 10), &r, 2000));

  HttpIntrospect http(server);
  ASSERT_TRUE(http.start("127.0.0.1:0", &err)) << err;
  ASSERT_NE(http.port(), 0u);

  const std::string metrics = http_get(http.port(), "/metrics");
  EXPECT_EQ(metrics.rfind("HTTP/1.0 200 OK\r\n", 0), 0u);
  EXPECT_NE(metrics.find("Content-Type: text/plain; version=0.0.4"),
            std::string::npos);
  EXPECT_NE(metrics.find("hetsched_server_admitted_total 1"),
            std::string::npos);
  EXPECT_NE(metrics.find("hetsched_net_slo_ok_total{shard=\"0\"}"),
            std::string::npos);

  const std::string health = http_get(http.port(), "/healthz");
  EXPECT_EQ(health.rfind("HTTP/1.0 200 OK\r\n", 0), 0u);
  EXPECT_NE(health.find("\r\n\r\nok\n"), std::string::npos);

  const std::string missing = http_get(http.port(), "/no-such-endpoint");
  EXPECT_EQ(missing.rfind("HTTP/1.0 404 Not Found\r\n", 0), 0u);

  // A draining server must fail its readiness probe while the side port
  // is still up — that ordering is why the CLI stops the HTTP port last.
  server.request_stop();
  server.wait();
  const std::string stopping = http_get(http.port(), "/healthz");
  EXPECT_EQ(stopping.rfind("HTTP/1.0 503 Service Unavailable\r\n", 0), 0u);

  http.stop();
}

TEST(HttpIntrospectTest, StartFailsCleanlyOnBadAddress) {
  const Platform pf = geometric_platform(2, 1.5);
  Server server(pf, ServerOptions{});
  HttpIntrospect http(server);
  std::string err;
  EXPECT_FALSE(http.start("not-an-address", &err));
  EXPECT_FALSE(err.empty());
  http.stop();  // idempotent on a never-started responder
}

}  // namespace
}  // namespace hetsched::net
