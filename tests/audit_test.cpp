// Drives the surfaces the shadow-oracle audit build instruments
// (src/partition/audit.h): controller churn, batch and decision-only
// partitioning, alpha bisection, and direct SlackTree operations.
//
// In a normal build this is an ordinary (fast) property suite.  Under
// -DHETSCHED_AUDIT=ON every admit/depart/rebalance/restore below
// additionally recomputes its reference answer inside the library and
// aborts on the first divergence, so `ctest -L audit` turns these tests
// into an end-to-end cross-check of the fold arithmetic, the segment-tree
// descent, the batch/online bit-identity bridge, and the bisection's
// monotonicity assumption.
#include <gtest/gtest.h>

#include <cstddef>
#include <optional>
#include <vector>

#include "gen/platform_gen.h"
#include "gen/taskset_gen.h"
#include "online/online_partitioner.h"
#include "partition/engine.h"
#include "partition/first_fit.h"
#include "util/rng.h"

namespace hetsched {
namespace {

Platform random_platform(Rng& rng) {
  const std::size_t m = static_cast<std::size_t>(rng.uniform_int(1, 8));
  switch (rng.uniform_int(0, 2)) {
    case 0:
      return Platform::identical(m);
    case 1:
      return geometric_platform(m, rng.uniform(1.0, 2.0));
    default:
      return big_little_platform((m + 1) / 2, m / 2 + 1, 1.0,
                                 rng.uniform(1.5, 3.0));
  }
}

TaskSet random_taskset(Rng& rng, const Platform& platform, std::size_t n_max) {
  TasksetSpec spec;
  spec.n = static_cast<std::size_t>(
      rng.uniform_int(1, static_cast<std::int64_t>(n_max)));
  spec.max_task_utilization = platform.max_speed();
  const double norm = rng.uniform(0.4, 1.15);
  spec.total_utilization =
      std::min(norm * platform.total_speed(),
               0.35 * static_cast<double>(spec.n) * spec.max_task_utilization);
  spec.periods = PeriodSpec::log_uniform(10, 1000);
  return generate_taskset(rng, spec);
}

constexpr AdmissionKind kSlackKinds[] = {AdmissionKind::kEdf,
                                         AdmissionKind::kRmsLiuLayland,
                                         AdmissionKind::kRmsHyperbolic};
constexpr PartitionEngine kEngines[] = {PartitionEngine::kNaive,
                                        PartitionEngine::kSegmentTree};

// Random admit/depart/rebalance/snapshot churn: every mutation below runs
// under the controller's audit hooks in an audit build.
TEST(Audit, ControllerChurnAcrossKindsAndEngines) {
  for (const AdmissionKind kind : kSlackKinds) {
    for (const PartitionEngine engine : kEngines) {
      Rng rng(0x5eed0 + static_cast<std::uint64_t>(kind) * 7 +
              static_cast<std::uint64_t>(engine));
      for (int trial = 0; trial < 8; ++trial) {
        const Platform platform = random_platform(rng);
        OnlinePartitioner c(platform, kind, rng.uniform(1.0, 2.5), engine);
        std::vector<OnlineTaskId> live;
        for (int step = 0; step < 120; ++step) {
          const int op = static_cast<int>(rng.uniform_int(0, 9));
          if (op < 6 || live.empty()) {
            const Task t{rng.uniform_int(1, 40), rng.uniform_int(40, 400)};
            const AdmitDecision d = c.admit(t);
            if (d.admitted) live.push_back(d.id);
          } else if (op < 9) {
            const std::size_t pick = static_cast<std::size_t>(rng.uniform_int(
                0, static_cast<std::int64_t>(live.size()) - 1));
            EXPECT_TRUE(c.depart(live[pick]));
            live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
          } else {
            const RebalanceReport rep = c.rebalance();
            EXPECT_EQ(rep.resident, c.resident_count());
          }
        }
        // Snapshot / what-if / restore round trip.
        const auto snap = c.snapshot();
        const std::size_t resident = c.resident_count();
        for (int k = 0; k < 5; ++k) {
          c.admit({1, static_cast<std::int64_t>(10 + k)});
        }
        c.restore(snap);
        EXPECT_EQ(c.resident_count(), resident);
      }
    }
  }
}

// The RTA fallback has no slack form; its audit path folds MachineLoad
// state from the resident lists instead.  Small sizes: RTA is expensive.
TEST(Audit, ControllerChurnResponseTimeFallback) {
  Rng rng(0xa0d17);
  for (int trial = 0; trial < 3; ++trial) {
    const Platform platform = Platform::identical(2);
    OnlinePartitioner c(platform, AdmissionKind::kRmsResponseTime, 2.0);
    std::vector<OnlineTaskId> live;
    for (int step = 0; step < 30; ++step) {
      if (rng.uniform_int(0, 2) < 2 || live.empty()) {
        const AdmitDecision d =
            c.admit({rng.uniform_int(1, 20), rng.uniform_int(40, 200)});
        if (d.admitted) live.push_back(d.id);
      } else {
        EXPECT_TRUE(c.depart(live.back()));
        live.pop_back();
      }
    }
  }
}

// Batch partition, decision-only accept, and the alpha bisection: under
// audit every accepts probe re-runs the full batch oracle and the opposite
// engine, and the bisection checks its sampled verdicts for monotonicity.
TEST(Audit, BatchScratchAndBisectionAgree) {
  for (const AdmissionKind kind : kSlackKinds) {
    for (const PartitionEngine engine : kEngines) {
      Rng rng(0xbeef + static_cast<std::uint64_t>(kind) * 11 +
              static_cast<std::uint64_t>(engine));
      PartitionScratch scratch;
      for (int trial = 0; trial < 12; ++trial) {
        const Platform platform = random_platform(rng);
        const TaskSet tasks = random_taskset(rng, platform, 24);
        const double alpha = rng.uniform(1.0, 3.5);
        const PartitionResult full =
            first_fit_partition(tasks, platform, kind, alpha, engine);
        EXPECT_EQ(full.feasible, first_fit_accepts(tasks, platform, kind,
                                                   alpha, scratch, engine));
        const std::optional<double> a_min =
            min_feasible_alpha(tasks, platform, kind, 4.0, scratch, engine);
        if (a_min) {
          EXPECT_TRUE(
              first_fit_accepts(tasks, platform, kind, *a_min, scratch,
                                engine));
        }
      }
    }
  }
}

// Exact-fit boundary instances: the packings where a 1-ulp slack error
// would flip a verdict, i.e. where the bit-space threshold search and the
// audit's bitwise cross-checks earn their keep.
TEST(Audit, ExactBoundaryPackingsSurviveChurn) {
  const Platform platform = Platform::identical(1);
  OnlinePartitioner c(platform, AdmissionKind::kEdf, 1.0);
  // {0.44, 0.40, 0.16} sums to exactly 1.0 on a unit machine.
  const AdmitDecision a = c.admit({44, 100});
  const AdmitDecision b = c.admit({40, 100});
  const AdmitDecision d = c.admit({16, 100});
  ASSERT_TRUE(a.admitted && b.admitted && d.admitted);
  EXPECT_FALSE(c.admit({1, 1000000}).admitted);
  ASSERT_TRUE(c.depart(b.id));
  EXPECT_TRUE(c.admit({40, 100}).admitted);
  EXPECT_TRUE(c.rebalance().applied);
}

// Direct SlackTree ops at adversarial values; the audit build verifies the
// heap invariant and replays every descent against the naive scan.
TEST(Audit, SlackTreeDirectOperations) {
  SlackTree tree;
  Rng rng(0x7ee5);
  for (int round = 0; round < 20; ++round) {
    const std::size_t m = static_cast<std::size_t>(rng.uniform_int(1, 17));
    std::vector<double> slack(m);
    for (auto& s : slack) s = rng.uniform(-1.0, 2.0);
    tree.build(slack);
    for (int q = 0; q < 50; ++q) {
      const double w = rng.uniform(-1.5, 2.5);
      const std::size_t j = tree.find_first_at_least(w);
      if (j != SlackTree::npos) {
        EXPECT_GE(tree.slack_at(j), w);
        for (std::size_t k = 0; k < j; ++k) EXPECT_LT(tree.slack_at(k), w);
      } else {
        for (std::size_t k = 0; k < m; ++k) EXPECT_LT(tree.slack_at(k), w);
      }
      tree.update(static_cast<std::size_t>(
                      rng.uniform_int(0, static_cast<std::int64_t>(m) - 1)),
                  rng.uniform(-1.0, 2.0));
    }
  }
}

}  // namespace
}  // namespace hetsched
