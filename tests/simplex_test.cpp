// Unit tests for the two-phase simplex solver (lp/simplex.h).
#include "lp/simplex.h"

#include <gtest/gtest.h>

#include <vector>

namespace hetsched {
namespace {

TEST(Simplex, SolvesTextbookMaximization) {
  // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18 -> opt 36 at (2, 6).
  LinearProgram lp(2);
  lp.set_maximize(true);
  lp.set_objective(0, 3);
  lp.set_objective(1, 5);
  lp.add_constraint({{0, 1.0}}, Relation::kLe, 4);
  lp.add_constraint({{1, 2.0}}, Relation::kLe, 12);
  lp.add_constraint({{0, 3.0}, {1, 2.0}}, Relation::kLe, 18);
  const LpSolution sol = solve_lp(lp);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.objective, 36.0, 1e-9);
  EXPECT_NEAR(sol.x[0], 2.0, 1e-9);
  EXPECT_NEAR(sol.x[1], 6.0, 1e-9);
}

TEST(Simplex, SolvesMinimizationWithGe) {
  // min 2x + 3y s.t. x + y >= 4, x >= 1 -> opt 8 at (4, 0).
  LinearProgram lp(2);
  lp.set_objective(0, 2);
  lp.set_objective(1, 3);
  lp.add_constraint({{0, 1.0}, {1, 1.0}}, Relation::kGe, 4);
  lp.add_constraint({{0, 1.0}}, Relation::kGe, 1);
  const LpSolution sol = solve_lp(lp);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.objective, 8.0, 1e-9);
  EXPECT_NEAR(sol.x[0], 4.0, 1e-9);
}

TEST(Simplex, EqualityConstraints) {
  // min x + y s.t. x + 2y = 6, x - y = 0 -> x = y = 2, obj 4.
  LinearProgram lp(2);
  lp.set_objective(0, 1);
  lp.set_objective(1, 1);
  lp.add_constraint({{0, 1.0}, {1, 2.0}}, Relation::kEq, 6);
  lp.add_constraint({{0, 1.0}, {1, -1.0}}, Relation::kEq, 0);
  const LpSolution sol = solve_lp(lp);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.x[0], 2.0, 1e-9);
  EXPECT_NEAR(sol.x[1], 2.0, 1e-9);
  EXPECT_NEAR(sol.objective, 4.0, 1e-9);
}

TEST(Simplex, DetectsInfeasibility) {
  // x <= 1 and x >= 2.
  LinearProgram lp(1);
  lp.add_constraint({{0, 1.0}}, Relation::kLe, 1);
  lp.add_constraint({{0, 1.0}}, Relation::kGe, 2);
  EXPECT_EQ(solve_lp(lp).status, LpStatus::kInfeasible);
  EXPECT_FALSE(lp_is_feasible(lp));
}

TEST(Simplex, DetectsUnboundedness) {
  // max x s.t. x >= 1.
  LinearProgram lp(1);
  lp.set_maximize(true);
  lp.set_objective(0, 1);
  lp.add_constraint({{0, 1.0}}, Relation::kGe, 1);
  EXPECT_EQ(solve_lp(lp).status, LpStatus::kUnbounded);
}

TEST(Simplex, NegativeRhsNormalized) {
  // -x <= -3 is x >= 3; min x -> 3.
  LinearProgram lp(1);
  lp.set_objective(0, 1);
  lp.add_constraint({{0, -1.0}}, Relation::kLe, -3);
  const LpSolution sol = solve_lp(lp);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.x[0], 3.0, 1e-9);
}

TEST(Simplex, DegenerateProblemTerminates) {
  // Degenerate vertex: several constraints meet at the optimum.
  LinearProgram lp(2);
  lp.set_maximize(true);
  lp.set_objective(0, 1);
  lp.set_objective(1, 1);
  lp.add_constraint({{0, 1.0}}, Relation::kLe, 1);
  lp.add_constraint({{1, 1.0}}, Relation::kLe, 1);
  lp.add_constraint({{0, 1.0}, {1, 1.0}}, Relation::kLe, 2);
  lp.add_constraint({{0, 1.0}, {1, 2.0}}, Relation::kLe, 3);
  const LpSolution sol = solve_lp(lp);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.objective, 2.0, 1e-9);
}

TEST(Simplex, RedundantEqualityRows) {
  // x + y = 2 stated twice: phase 1 must cope with the redundant artificial.
  LinearProgram lp(2);
  lp.set_objective(0, 1);
  lp.add_constraint({{0, 1.0}, {1, 1.0}}, Relation::kEq, 2);
  lp.add_constraint({{0, 1.0}, {1, 1.0}}, Relation::kEq, 2);
  const LpSolution sol = solve_lp(lp);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.objective, 0.0, 1e-9);  // x = 0, y = 2
}

TEST(Simplex, ZeroObjectiveFeasibilityProbe) {
  LinearProgram lp(2);
  lp.add_constraint({{0, 1.0}, {1, 1.0}}, Relation::kEq, 1);
  EXPECT_TRUE(lp_is_feasible(lp));
}

TEST(Simplex, EmptyFeasibleRegionViaEqualities) {
  // x = 1 and x = 2.
  LinearProgram lp(1);
  lp.add_constraint({{0, 1.0}}, Relation::kEq, 1);
  lp.add_constraint({{0, 1.0}}, Relation::kEq, 2);
  EXPECT_FALSE(lp_is_feasible(lp));
}

TEST(Simplex, TransportationStyleProblem) {
  // 2 suppliers (cap 10, 20), 2 consumers (demand 15, 10); min cost.
  // costs: s0->c0:1, s0->c1:4, s1->c0:2, s1->c1:1.
  // Optimal: s0 sends 10 to c0; s1 sends 5 to c0 and 10 to c1 -> 10+10+10=30.
  LinearProgram lp(4);  // x00 x01 x10 x11
  lp.set_objective(0, 1);
  lp.set_objective(1, 4);
  lp.set_objective(2, 2);
  lp.set_objective(3, 1);
  lp.add_constraint({{0, 1.0}, {1, 1.0}}, Relation::kLe, 10);
  lp.add_constraint({{2, 1.0}, {3, 1.0}}, Relation::kLe, 20);
  lp.add_constraint({{0, 1.0}, {2, 1.0}}, Relation::kEq, 15);
  lp.add_constraint({{1, 1.0}, {3, 1.0}}, Relation::kEq, 10);
  const LpSolution sol = solve_lp(lp);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.objective, 30.0, 1e-9);
}

TEST(Simplex, ReportsIterations) {
  LinearProgram lp(2);
  lp.set_maximize(true);
  lp.set_objective(0, 1);
  lp.add_constraint({{0, 1.0}, {1, 1.0}}, Relation::kLe, 5);
  const LpSolution sol = solve_lp(lp);
  EXPECT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_GE(sol.iterations, 1u);
}

TEST(Simplex, StatusToString) {
  EXPECT_EQ(to_string(LpStatus::kOptimal), "optimal");
  EXPECT_EQ(to_string(LpStatus::kInfeasible), "infeasible");
  EXPECT_EQ(to_string(LpStatus::kUnbounded), "unbounded");
  EXPECT_EQ(to_string(LpStatus::kIterLimit), "iteration-limit");
}

}  // namespace
}  // namespace hetsched
