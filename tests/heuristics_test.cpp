// Unit tests for the partitioning heuristic grid (baselines/heuristics.h).
#include "baselines/heuristics.h"

#include <gtest/gtest.h>

#include "gen/taskset_gen.h"

namespace hetsched {
namespace {

TEST(Heuristics, DefaultSpecMatchesFirstFit) {
  Rng rng(1);
  for (int iter = 0; iter < 20; ++iter) {
    TasksetSpec spec;
    spec.n = 12;
    spec.total_utilization = rng.uniform(1.0, 4.0);
    const TaskSet tasks = generate_taskset(rng, spec);
    const Platform platform = Platform::from_speeds({0.5, 1.0, 2.0, 2.0});
    const PartitionResult a =
        first_fit_partition(tasks, platform, AdmissionKind::kEdf, 1.5);
    const PartitionResult b = heuristic_partition(
        tasks, platform, HeuristicSpec{}, AdmissionKind::kEdf, 1.5);
    ASSERT_EQ(a.feasible, b.feasible);
    if (a.feasible) {
      EXPECT_EQ(a.assignment, b.assignment);
    }
  }
}

TEST(Heuristics, BestFitPrefersTightMachine) {
  // One task w = 0.5; machines 1.0 and 0.6 (sorted: 0.6 first).  First fit
  // and best fit both choose 0.6; worst fit chooses 1.0.
  const TaskSet tasks({{1, 2}});
  const Platform platform = Platform::from_speeds({1.0, 0.6});
  HeuristicSpec wf;
  wf.fit = FitRule::kWorstFit;
  const PartitionResult w =
      heuristic_partition(tasks, platform, wf, AdmissionKind::kEdf, 1.0);
  ASSERT_TRUE(w.feasible);
  EXPECT_EQ(w.assignment[0], 1u);  // sorted index 1 == speed 1.0

  HeuristicSpec bf;
  bf.fit = FitRule::kBestFit;
  const PartitionResult b =
      heuristic_partition(tasks, platform, bf, AdmissionKind::kEdf, 1.0);
  ASSERT_TRUE(b.feasible);
  EXPECT_EQ(b.assignment[0], 0u);  // sorted index 0 == speed 0.6
}

TEST(Heuristics, BestFitConsidersExistingLoad) {
  // Machines {1, 1}; tasks w = .6, .3, .35.  Dec-util order: .6, .35, .3.
  // Best fit: .6->m0; .35->m0? residual would be .05 vs m1 residual .65:
  // chooses m0.  .3->m1.  All feasible.
  const TaskSet tasks({{6, 10}, {3, 10}, {35, 100}});
  const Platform platform = Platform::from_speeds({1.0, 1.0});
  HeuristicSpec bf;
  bf.fit = FitRule::kBestFit;
  const PartitionResult b =
      heuristic_partition(tasks, platform, bf, AdmissionKind::kEdf, 1.0);
  ASSERT_TRUE(b.feasible);
  EXPECT_EQ(b.assignment[0], 0u);   // .6
  EXPECT_EQ(b.assignment[2], 0u);   // .35 packs tightly beside .6
  EXPECT_EQ(b.assignment[1], 1u);   // .3
}

TEST(Heuristics, DecreasingSpeedOrderBurnsFastMachinesFirst) {
  const TaskSet tasks({{1, 10}});  // tiny task
  const Platform platform = Platform::from_speeds({1.0, 4.0});
  HeuristicSpec spec;
  spec.machine_order = MachineOrder::kDecreasingSpeed;
  const PartitionResult r =
      heuristic_partition(tasks, platform, spec, AdmissionKind::kEdf, 1.0);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.assignment[0], 1u);  // fast machine grabbed first
}

TEST(Heuristics, IncreasingUtilizationOrderCanFail) {
  // Small tasks first clog the machines the big task needs.  Speeds
  // {0.7, 1.2}, tasks w = {1.1, 0.7, 0.05}:
  //   inc-util: 0.05->m0, then 0.7 overflows m0 (0.75 > 0.7) -> m1, then
  //             1.1 fits nowhere (1.8 > 1.2, 1.1 > 0.7): FAIL.
  //   dec-util (paper): 1.1->m1, 0.7->m0, 0.05->m1 (1.15 <= 1.2): feasible.
  // (The small task is 0.05, not 0.1, so no double-precision sum lands
  // exactly on a capacity boundary.)
  const TaskSet tasks({{11, 10}, {7, 10}, {1, 20}});
  const Platform platform = Platform::from_speeds({0.7, 1.2});
  HeuristicSpec dec;  // default = paper's ordering
  EXPECT_TRUE(
      heuristic_partition(tasks, platform, dec, AdmissionKind::kEdf, 1.0)
          .feasible);
  HeuristicSpec inc;
  inc.task_order = TaskOrder::kIncreasingUtilization;
  EXPECT_FALSE(
      heuristic_partition(tasks, platform, inc, AdmissionKind::kEdf, 1.0)
          .feasible);
}

TEST(Heuristics, RandomOrderIsDeterministicGivenSeed) {
  Rng gen(5);
  TasksetSpec tspec;
  tspec.n = 10;
  tspec.total_utilization = 2.0;
  const TaskSet tasks = generate_taskset(gen, tspec);
  const Platform platform = Platform::from_speeds({1.0, 1.0, 1.0});
  HeuristicSpec spec;
  spec.task_order = TaskOrder::kRandom;
  Rng r1(99), r2(99);
  const PartitionResult a =
      heuristic_partition(tasks, platform, spec, AdmissionKind::kEdf, 2.0, &r1);
  const PartitionResult b =
      heuristic_partition(tasks, platform, spec, AdmissionKind::kEdf, 2.0, &r2);
  EXPECT_EQ(a.feasible, b.feasible);
  EXPECT_EQ(a.assignment, b.assignment);
}

TEST(Heuristics, InputOrderRespected) {
  // Input order lets the small task claim the slow machine first.
  const TaskSet tasks({{1, 10}, {9, 10}});  // w = .1 then .9
  const Platform platform = Platform::from_speeds({0.2, 1.0});
  HeuristicSpec spec;
  spec.task_order = TaskOrder::kInputOrder;
  const PartitionResult r =
      heuristic_partition(tasks, platform, spec, AdmissionKind::kEdf, 1.0);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.assignment[0], 0u);
  EXPECT_EQ(r.assignment[1], 1u);
}

TEST(Heuristics, SpecToStringRoundTrip) {
  HeuristicSpec spec;
  spec.task_order = TaskOrder::kRandom;
  spec.machine_order = MachineOrder::kDecreasingSpeed;
  spec.fit = FitRule::kWorstFit;
  EXPECT_EQ(spec.to_string(), "random/dec-speed/worst-fit");
  EXPECT_EQ(HeuristicSpec{}.to_string(), "dec-util/inc-speed/first-fit");
}

TEST(GlobalNecessary, AcceptsWithinTotals) {
  const TaskSet tasks({{1, 2}, {1, 2}});
  EXPECT_TRUE(global_necessary_condition(tasks, Platform::from_speeds({1.0})));
}

TEST(GlobalNecessary, RejectsOverTotalSpeed) {
  const TaskSet tasks({{3, 2}});
  EXPECT_FALSE(
      global_necessary_condition(tasks, Platform::from_speeds({1.0})));
}

TEST(GlobalNecessary, RejectsTaskDenserThanFastestMachine) {
  const TaskSet tasks({{3, 2}});  // w = 1.5
  EXPECT_FALSE(global_necessary_condition(
      tasks, Platform::from_speeds({1.0, 1.0, 1.0})));
  EXPECT_TRUE(
      global_necessary_condition(tasks, Platform::from_speeds({1.0, 2.0})));
}

TEST(GlobalNecessary, EmptyTasksAccepted) {
  EXPECT_TRUE(
      global_necessary_condition(TaskSet{}, Platform::from_speeds({1.0})));
}

}  // namespace
}  // namespace hetsched
