// Unit tests for the thread pool (util/thread_pool.h).
#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <thread>
#include <vector>

namespace hetsched {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturnsImmediately) {
  ThreadPool pool(1);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 10000;
  std::vector<std::atomic<int>> hits(kN);
  pool.parallel_for_index(kN, [&hits](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, ParallelForZeroIsNoop) {
  ThreadPool pool(2);
  pool.parallel_for_index(0, [](std::size_t) { FAIL(); });
  SUCCEED();
}

TEST(ThreadPool, ParallelForSmallerThanPool) {
  ThreadPool pool(8);
  std::atomic<int> counter{0};
  pool.parallel_for_index(3, [&counter](std::size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 3);
}

TEST(ThreadPool, SizeReportsWorkerCount) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
}

TEST(ThreadPool, DefaultPoolIsSingleton) {
  EXPECT_EQ(&default_thread_pool(), &default_thread_pool());
  EXPECT_GE(default_thread_pool().size(), 1u);
}

TEST(ThreadPool, SequentialSumMatchesParallel) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 1000;
  std::vector<long> out(kN, 0);
  pool.parallel_for_index(kN, [&out](std::size_t i) {
    out[i] = static_cast<long>(i) * 2;
  });
  const long sum = std::accumulate(out.begin(), out.end(), 0L);
  EXPECT_EQ(sum, static_cast<long>(kN * (kN - 1)));
}

// Destroying the pool with tasks still queued must drain them, not drop
// them: workers only exit once the queue is empty, and the destructor
// joins every worker.  A shutdown path that discarded the backlog would
// silently lose sweep shards — this pins the drain-then-join contract.
TEST(ThreadPool, DestructionDrainsQueuedTasks) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 64; ++i) {
      pool.submit([&counter] {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        counter.fetch_add(1);
      });
    }
    // No wait_idle(): the destructor races a still-deep backlog.
  }
  EXPECT_EQ(counter.load(), 64);
}

// Same contract at the single-worker degenerate point, where the
// destructor's notify_all lands while the lone worker is mid-task.
TEST(ThreadPool, DestructionWithSingleWorkerAndDeepBacklog) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 200; ++i) {
      pool.submit([&counter] { counter.fetch_add(1); });
    }
  }
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPool, ReusableAcrossBatches) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int batch = 0; batch < 5; ++batch) {
    pool.parallel_for_index(10,
                            [&counter](std::size_t) { counter.fetch_add(1); });
  }
  EXPECT_EQ(counter.load(), 50);
}

}  // namespace
}  // namespace hetsched
