// Unit tests for the text interchange format (io/text_format.h).
#include "io/text_format.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

namespace hetsched {
namespace {

TEST(TextFormat, ParsesMinimalInstance) {
  const auto r = parse_instance_string("platform 1 2\ntask 3 10\n");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value->platform.size(), 2u);
  EXPECT_EQ(r.value->tasks.size(), 1u);
  EXPECT_EQ(r.value->tasks[0], (Task{3, 10}));
}

TEST(TextFormat, ParsesRationalAndDecimalSpeeds) {
  const auto r = parse_instance_string("platform 3/2 0.25 2\n");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value->platform.speed_exact(0), Rational(1, 4));
  EXPECT_EQ(r.value->platform.speed_exact(1), Rational(3, 2));
  EXPECT_EQ(r.value->platform.speed_exact(2), Rational(2));
}

TEST(TextFormat, CommentsAndBlankLinesIgnored) {
  const auto r = parse_instance_string(
      "# header comment\n\nplatform 1  # trailing comment\n\ntask 1 2\n");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value->tasks.size(), 1u);
}

TEST(TextFormat, ZeroTasksAllowed) {
  const auto r = parse_instance_string("platform 1\n");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value->tasks.empty());
}

TEST(TextFormat, MissingPlatformIsError) {
  const auto r = parse_instance_string("task 1 2\n");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error->message.find("missing platform"), std::string::npos);
}

TEST(TextFormat, DuplicatePlatformIsError) {
  const auto r = parse_instance_string("platform 1\nplatform 2\n");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error->line, 2u);
  EXPECT_NE(r.error->message.find("duplicate"), std::string::npos);
}

TEST(TextFormat, BadSpeedReportsLine) {
  const auto r = parse_instance_string("platform 1 fast\n");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error->line, 1u);
  EXPECT_NE(r.error->message.find("fast"), std::string::npos);
}

TEST(TextFormat, NegativeOrZeroSpeedRejected) {
  EXPECT_FALSE(parse_instance_string("platform 0\n").ok());
  EXPECT_FALSE(parse_instance_string("platform -1\n").ok());
  EXPECT_FALSE(parse_instance_string("platform 1/0\n").ok());
}

TEST(TextFormat, BadTaskRejected) {
  EXPECT_FALSE(parse_instance_string("platform 1\ntask 1\n").ok());
  EXPECT_FALSE(parse_instance_string("platform 1\ntask 0 5\n").ok());
  EXPECT_FALSE(parse_instance_string("platform 1\ntask 1 2 3\n").ok());
  EXPECT_FALSE(parse_instance_string("platform 1\ntask a b\n").ok());
}

TEST(TextFormat, UnknownDirectiveRejected) {
  const auto r = parse_instance_string("platform 1\nmachine 2\n");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error->message.find("machine"), std::string::npos);
}

TEST(TextFormat, RoundTripExact) {
  const auto r = parse_instance_string("platform 3/2 1 0.25\ntask 7 11\ntask 1 2\n");
  ASSERT_TRUE(r.ok());
  const std::string text = format_instance(*r.value);
  const auto r2 = parse_instance_string(text);
  ASSERT_TRUE(r2.ok());
  ASSERT_EQ(r2.value->platform.size(), r.value->platform.size());
  for (std::size_t j = 0; j < r.value->platform.size(); ++j) {
    EXPECT_EQ(r2.value->platform.speed_exact(j),
              r.value->platform.speed_exact(j));
  }
  ASSERT_EQ(r2.value->tasks.size(), r.value->tasks.size());
  for (std::size_t i = 0; i < r.value->tasks.size(); ++i) {
    EXPECT_EQ(r2.value->tasks[i], r.value->tasks[i]);
  }
}

TEST(TextFormat, SaveAndLoadFile) {
  const auto r = parse_instance_string("platform 1 2\ntask 3 10\n");
  ASSERT_TRUE(r.ok());
  const std::string path = ::testing::TempDir() + "/hetsched_io_test.txt";
  ASSERT_TRUE(save_instance(*r.value, path));
  const auto loaded = load_instance(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value->tasks.size(), 1u);
  std::remove(path.c_str());
}

TEST(TextFormat, LoadMissingFileNamesPath) {
  const auto r = load_instance("/nonexistent/zzz.txt");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error->message.find("zzz.txt"), std::string::npos);
}

TEST(TextFormat, ParseErrorToString) {
  const ParseError err{7, "boom"};
  EXPECT_EQ(err.to_string(), "line 7: boom");
}

}  // namespace
}  // namespace hetsched
