// Tests for the observability layer (src/obs): bucket mapping against
// util/stats.h's Histogram, registry aggregation across threads (the
// TSan-matrix workload for `ctest -L obs`), trace ring semantics, JSONL
// serialization, and the kill-switch contract.
//
// The Counter/Gauge/LatencyHistogram classes and the registry exist in
// BOTH build modes — only the HETSCHED_* macros compile away with
// -DHETSCHED_METRICS=OFF — so most of this file runs unconditionally and
// the macro-gated sections assert the mode-specific behavior.
#include "obs/metrics.h"

#include <cmath>
#include <cstdint>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/platform.h"
#include "core/task.h"
#include "io/obs_jsonl.h"
#include "obs/flight_recorder.h"
#include "obs/span.h"
#include "obs/trace.h"
#include "online/online_partitioner.h"
#include "partition/audit.h"
#include "util/stats.h"

namespace hetsched {
namespace {

TEST(ObsBuckets, EdgeCases) {
  EXPECT_EQ(obs::latency_bucket(0), 0u);
  EXPECT_EQ(obs::latency_bucket(1), 0u);
  EXPECT_EQ(obs::latency_bucket(2), 1u);
  EXPECT_EQ(obs::latency_bucket(3), 1u);
  EXPECT_EQ(obs::latency_bucket(4), 2u);
  EXPECT_EQ(obs::latency_bucket(1023), 9u);
  EXPECT_EQ(obs::latency_bucket(1024), 10u);
  EXPECT_EQ(obs::latency_bucket(~std::uint64_t{0}), 63u);
}

TEST(ObsBuckets, EdgesAreConsistent) {
  for (std::size_t b = 0; b < obs::kHistogramBuckets; ++b) {
    EXPECT_EQ(obs::latency_bucket(obs::bucket_lo_ns(b) == 0
                                      ? 0
                                      : obs::bucket_lo_ns(b)),
              b);
    if (b + 1 < obs::kHistogramBuckets) {
      EXPECT_EQ(obs::latency_bucket(obs::bucket_hi_ns(b)), b + 1);
    }
  }
}

// The log-spaced ns buckets must agree, sample for sample, with a
// stats::Histogram(0, 64, 64) fed log2(ns) — the design contract that
// makes the two histogram implementations cross-checkable.
TEST(ObsBuckets, CrossCheckAgainstStatsHistogram) {
  obs::LatencyHistogram h =
      obs::registry().histogram("test_crosscheck_ns", "cross-check");
  Histogram reference(0, 64, 64);

  const obs::HistogramSnapshot before = obs::registry().histogram_snapshot(h);
  std::vector<std::uint64_t> samples;
  std::uint64_t v = 1;
  for (int i = 0; i < 200; ++i) {
    samples.push_back(v);
    v = v * 3 + 1;  // spreads across many octaves, deterministic
    if (v > (std::uint64_t{1} << 40)) v = (v % 977) + 1;
  }
  for (const std::uint64_t ns : samples) {
    h.record_ns(ns);
    reference.add(std::log2(static_cast<double>(ns)));
  }

  const obs::HistogramSnapshot after = obs::registry().histogram_snapshot(h);
  EXPECT_EQ(after.count - before.count, samples.size());
  for (std::size_t b = 0; b < obs::kHistogramBuckets; ++b) {
    EXPECT_EQ(after.buckets[b] - before.buckets[b], reference.bin_count(b))
        << "bucket " << b;
  }
}

TEST(ObsRegistry, RegistrationIsIdempotent) {
  obs::Counter a = obs::registry().counter("test_idem_total", "first");
  obs::Counter b = obs::registry().counter("test_idem_total", "second");
  EXPECT_EQ(a.id(), b.id());
  obs::Gauge g1 = obs::registry().gauge("test_idem_gauge", "");
  obs::Gauge g2 = obs::registry().gauge("test_idem_gauge", "");
  EXPECT_EQ(g1.id(), g2.id());
}

TEST(ObsRegistry, CounterAndGaugeRoundTrip) {
  obs::Counter c = obs::registry().counter("test_roundtrip_total", "");
  const std::uint64_t before = obs::registry().counter_value(c);
  c.inc();
  c.add(41);
  EXPECT_EQ(obs::registry().counter_value(c), before + 42);

  obs::Gauge g = obs::registry().gauge("test_roundtrip_gauge", "");
  g.set(-7);
  EXPECT_EQ(obs::registry().gauge_value(g), -7);
  g.add(10);
  EXPECT_EQ(obs::registry().gauge_value(g), 3);
}

// The TSan-matrix workload: concurrent writers on one counter and one
// histogram, with threads exiting (exercising the retired-block fold)
// while a reader polls snapshots.  Totals must be exact after join.
TEST(ObsRegistry, ConcurrentWritersExactAfterJoin) {
  obs::Counter c = obs::registry().counter("test_mt_total", "");
  obs::LatencyHistogram h = obs::registry().histogram("test_mt_ns", "");
  const std::uint64_t c0 = obs::registry().counter_value(c);
  const std::uint64_t h0 = obs::registry().histogram_snapshot(h).count;

  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  for (int wave = 0; wave < 2; ++wave) {  // second wave re-attaches blocks
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        for (int i = 0; i < kPerThread; ++i) {
          c.inc();
          h.record_ns(static_cast<std::uint64_t>(t * kPerThread + i));
        }
      });
    }
    // Concurrent reader: snapshots must be well-formed (monotone counts),
    // not exact, while writers run.
    const obs::HistogramSnapshot mid = obs::registry().histogram_snapshot(h);
    EXPECT_GE(mid.count, h0);
    for (std::thread& th : threads) th.join();
  }

  EXPECT_EQ(obs::registry().counter_value(c) - c0,
            std::uint64_t{2 * kThreads * kPerThread});
  const obs::HistogramSnapshot snap = obs::registry().histogram_snapshot(h);
  EXPECT_EQ(snap.count - h0, std::uint64_t{2 * kThreads * kPerThread});
}

TEST(ObsRegistry, SnapshotPercentilesAreOrdered) {
  obs::LatencyHistogram h =
      obs::registry().histogram("test_percentile_ns", "");
  for (std::uint64_t ns = 1; ns <= 4096; ++ns) h.record_ns(ns);
  const obs::HistogramSnapshot snap = obs::registry().histogram_snapshot(h);
  const double p50 = snap.percentile_ns(50);
  const double p99 = snap.percentile_ns(99);
  const double p999 = snap.percentile_ns(99.9);
  EXPECT_GT(p50, 0.0);
  EXPECT_LE(p50, p99);
  EXPECT_LE(p99, p999);
  // The p50 of 1..4096 is ~2048; the log-bucket estimate may be off by at
  // most one octave.
  EXPECT_GE(p50, 1024.0);
  EXPECT_LE(p50, 4096.0);
}

TEST(ObsRegistry, ExposeFormat) {
  obs::Counter c = obs::registry().counter("test_expose_total", "help text");
  c.inc();
  const std::string text = obs::registry().expose();
  EXPECT_EQ(text.rfind("hetsched_metrics_enabled ", 0), 0u);
  EXPECT_NE(text.find("# HELP test_expose_total help text"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE test_expose_total counter"),
            std::string::npos);
}

// ---------------------------------------------------------------------
// Kill-switch contract.
// ---------------------------------------------------------------------

#if HETSCHED_METRICS_ENABLED

// With metrics compiled in, the macros must actually bump.
TEST(ObsMacros, MacrosBumpWhenEnabled) {
  static const obs::Counter c =
      obs::registry().counter("test_macro_total", "");
  const std::uint64_t before = obs::registry().counter_value(c);
  HETSCHED_COUNT(c);
  HETSCHED_COUNT_ADD(c, 4);
  EXPECT_EQ(obs::registry().counter_value(c), before + 5);
}

#else  // !HETSCHED_METRICS_ENABLED

// With metrics compiled out, macro arguments are discarded textually —
// this must compile even though no such handle exists anywhere.
TEST(ObsMacros, MacrosDiscardArgumentsWhenDisabled) {
  HETSCHED_COUNT(no_such_handle_anywhere);
  HETSCHED_COUNT_ADD(no_such_handle_anywhere, 123);
  HETSCHED_GAUGE_SET(no_such_handle_anywhere, -1);
  HETSCHED_TIMED(no_such_handle_anywhere);
  HETSCHED_TIMED_SAMPLED(no_such_handle_anywhere);
  HETSCHED_TRACE_EVENT(no_such_kind, true, 0, 0);
  HETSCHED_SPAN_RECORD(no_such_id, no_such_id, no_such_id, no_such_stage, 0,
                       0);
  HETSCHED_FLIGHT_RECORD(no_such_recorder_anywhere, 0, 0, 0, 0, 0, 0);
  SUCCEED();
}

#endif  // HETSCHED_METRICS_ENABLED

// ---------------------------------------------------------------------
// Trace ring.
// ---------------------------------------------------------------------

TEST(ObsTrace, RecordDrainRoundTrip) {
  obs::trace_drain();  // clear anything earlier tests left behind
  obs::set_trace_enabled(true);
  obs::trace_record(obs::TraceKind::kAdmit, true, 3, 42);
  obs::trace_record(obs::TraceKind::kDepart, false, 0, 7);
  obs::trace_record(obs::TraceKind::kRebalance, true, 0, 2);
  obs::set_trace_enabled(false);

  const std::vector<obs::TraceEvent> events = obs::trace_drain();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].kind, obs::TraceKind::kAdmit);
  EXPECT_TRUE(events[0].ok);
  EXPECT_EQ(events[0].machine, 3u);
  EXPECT_EQ(events[0].value, 42u);
  EXPECT_EQ(events[1].kind, obs::TraceKind::kDepart);
  EXPECT_FALSE(events[1].ok);
  EXPECT_EQ(events[2].kind, obs::TraceKind::kRebalance);
  EXPECT_LT(events[0].seq, events[1].seq);
  EXPECT_LT(events[1].seq, events[2].seq);
  EXPECT_LE(events[0].t_ns, events[1].t_ns);
  // Drain cleared: nothing left.
  EXPECT_TRUE(obs::trace_drain().empty());
}

TEST(ObsTrace, OverwritesAreCountedAsDropped) {
  obs::trace_drain();
  const std::uint64_t dropped0 = obs::trace_dropped();
  obs::set_trace_enabled(true);
  const std::size_t n = obs::kTraceCapacity + 100;
  for (std::size_t i = 0; i < n; ++i) {
    obs::trace_record(obs::TraceKind::kAdmit, true, 0, i);
  }
  obs::set_trace_enabled(false);
  EXPECT_EQ(obs::trace_dropped() - dropped0, 100u);
  const std::vector<obs::TraceEvent> events = obs::trace_drain();
  ASSERT_EQ(events.size(), obs::kTraceCapacity);
  // The survivors are the most recent kTraceCapacity events, in order.
  EXPECT_EQ(events.front().value, 100u);
  EXPECT_EQ(events.back().value, n - 1);
}

TEST(ObsTrace, ConcurrentRecordersKeepGlobalSeqUnique) {
  obs::trace_drain();
  obs::set_trace_enabled(true);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 200;  // fits each thread's ring
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < kPerThread; ++i) {
        obs::trace_record(obs::TraceKind::kAdmit, true,
                          static_cast<std::uint32_t>(t),
                          static_cast<std::uint64_t>(i));
      }
    });
  }
  for (std::thread& th : threads) th.join();
  obs::set_trace_enabled(false);
  const std::vector<obs::TraceEvent> events = obs::trace_drain();
  EXPECT_EQ(events.size(), std::size_t{kThreads * kPerThread});
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_LT(events[i - 1].seq, events[i].seq);  // strictly increasing
  }
}

// Regression: events recorded by a thread that has since exited must
// survive into the next drain.  The per-thread ring is folded into the
// retired list at thread exit; losing that fold silently truncates every
// --trace-out written after a worker pool shuts down.
TEST(ObsTrace, ThreadExitRetainsEvents) {
  obs::trace_drain();
  obs::set_trace_enabled(true);
  std::thread worker([] {
    obs::trace_record(obs::TraceKind::kAdmit, true, 1, 1001);
    obs::trace_record(obs::TraceKind::kDepart, true, 1, 1002);
  });
  worker.join();  // ring owner is gone before the drain
  obs::set_trace_enabled(false);
  const std::vector<obs::TraceEvent> events = obs::trace_drain();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].value, 1001u);
  EXPECT_EQ(events[1].value, 1002u);
}

TEST(ObsTraceJson, EventFormat) {
  obs::TraceEvent ev;
  ev.seq = 17;
  ev.t_ns = 123456789;
  ev.kind = obs::TraceKind::kAdmit;
  ev.ok = true;
  ev.machine = 3;
  ev.value = 42;
  EXPECT_EQ(trace_event_json(ev),
            "{\"seq\":17,\"t_ns\":123456789,\"kind\":\"admit\",\"ok\":true,"
            "\"machine\":3,\"value\":42}");
  std::ostringstream out;
  const std::vector<obs::TraceEvent> events = {ev, ev};
  EXPECT_EQ(write_trace_jsonl(events, out), 2u);
  EXPECT_EQ(out.str(), trace_event_json(ev) + "\n" + trace_event_json(ev) +
                           "\n");
}

// ---------------------------------------------------------------------
// Span ring (obs/span.h).
// ---------------------------------------------------------------------

TEST(ObsSpan, GateIsOffByDefaultAndToggles) {
  // Nothing in this binary arms spans before this test, so the default
  // must still be visible: recording without set_span_enabled is the
  // common case (every untraced production start) and must stay free.
  EXPECT_FALSE(obs::span_enabled());
  obs::set_span_enabled(true);
  EXPECT_TRUE(obs::span_enabled());
  obs::set_span_enabled(false);
  EXPECT_FALSE(obs::span_enabled());
}

TEST(ObsSpan, RecordDrainRoundTrip) {
  obs::span_drain();  // clear anything earlier tests left behind
  const std::uint64_t root = obs::span_next_id();
  obs::span_record(7, root, 0, obs::SpanStage::kDecode, 100, 150);
  obs::span_record(7, obs::span_next_id(), root, obs::SpanStage::kWarmAdmit,
                   150, 190);
  obs::span_record(9, obs::span_next_id(), 0, obs::SpanStage::kDecode, 120,
                   130);
  const std::vector<obs::SpanRecord> spans = obs::span_drain();
  ASSERT_EQ(spans.size(), 3u);
  // span_drain orders by t0.
  EXPECT_EQ(spans[0].trace_id, 7u);
  EXPECT_EQ(spans[0].stage, obs::SpanStage::kDecode);
  EXPECT_EQ(spans[0].parent_id, 0u);
  EXPECT_EQ(spans[1].trace_id, 9u);
  EXPECT_EQ(spans[2].trace_id, 7u);
  EXPECT_EQ(spans[2].parent_id, root);
  EXPECT_EQ(spans[2].stage, obs::SpanStage::kWarmAdmit);
  EXPECT_TRUE(obs::span_drain().empty());  // drain cleared
}

TEST(ObsSpan, SpanIdsAreUniqueAndNonzero) {
  const std::uint64_t a = obs::span_next_id();
  const std::uint64_t b = obs::span_next_id();
  EXPECT_NE(a, 0u);
  EXPECT_NE(b, 0u);
  EXPECT_NE(a, b);
}

TEST(ObsSpan, OverwritesAreCountedAsDropped) {
  obs::span_drain();
  const std::uint64_t dropped0 = obs::span_dropped();
  const std::size_t n = obs::kSpanCapacity + 50;
  for (std::size_t i = 0; i < n; ++i) {
    obs::span_record(1, i + 1, 0, obs::SpanStage::kDecode, i, i + 1);
  }
  EXPECT_EQ(obs::span_dropped() - dropped0, 50u);
  EXPECT_EQ(obs::span_drain().size(), obs::kSpanCapacity);
}

// Regression twin of ObsTrace.ThreadExitRetainsEvents for the span ring:
// spans recorded on a pipeline thread that exited (loop shutdown) must
// still appear in the next tracez drain.
TEST(ObsSpan, ThreadExitRetainsSpans) {
  obs::span_drain();
  std::thread worker([] {
    obs::span_record(11, 1, 0, obs::SpanStage::kDecode, 10, 20);
    obs::span_record(11, 2, 0, obs::SpanStage::kEncode, 20, 30);
  });
  worker.join();
  const std::vector<obs::SpanRecord> spans = obs::span_drain();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].trace_id, 11u);
  EXPECT_EQ(spans[1].stage, obs::SpanStage::kEncode);
}

TEST(ObsSpan, SlowestTracesGroupsRanksAndDiscardsTorn) {
  std::vector<obs::SpanRecord> spans;
  auto add = [&](std::uint64_t trace, std::uint64_t t0, std::uint64_t t1) {
    obs::SpanRecord sp;
    sp.trace_id = trace;
    sp.span_id = spans.size() + 1;
    sp.stage = obs::SpanStage::kDecode;
    sp.t0_ns = t0;
    sp.t1_ns = t1;
    spans.push_back(sp);
  };
  add(1, 100, 110);  // trace 1: duration 10
  add(2, 100, 150);
  add(2, 150, 400);  // trace 2: duration 300 (slowest)
  add(3, 100, 200);  // trace 3: duration 100
  add(4, 500, 400);  // torn (t1 < t0): discarded
  add(0, 100, 200);  // zero trace id: discarded
  const std::vector<obs::TraceSummary> top =
      obs::slowest_traces(std::move(spans), 2);
  ASSERT_EQ(top.size(), 2u);  // k truncation; traces 4-and-0 never appear
  EXPECT_EQ(top[0].trace_id, 2u);
  EXPECT_EQ(top[0].duration_ns(), 300u);
  ASSERT_EQ(top[0].spans.size(), 2u);
  EXPECT_LE(top[0].spans[0].t0_ns, top[0].spans[1].t0_ns);
  EXPECT_EQ(top[1].trace_id, 3u);
}

TEST(ObsSpanJson, RecordAndTracezFormat) {
  obs::SpanRecord sp;
  sp.trace_id = 7;
  sp.span_id = 3;
  sp.parent_id = 0;
  sp.stage = obs::SpanStage::kWarmAdmit;
  sp.t0_ns = 100;
  sp.t1_ns = 180;
  EXPECT_EQ(span_record_json(sp),
            "{\"trace_id\":7,\"span_id\":3,\"parent_id\":0,"
            "\"stage\":\"warm-admit\",\"t0_ns\":100,\"t1_ns\":180}");
  obs::TraceSummary tr;
  tr.trace_id = 7;
  tr.t0_ns = 100;
  tr.t1_ns = 180;
  tr.spans = {sp};
  const std::string body = render_tracez_jsonl({tr});
  EXPECT_EQ(body, "{\"trace_id\":7,\"duration_ns\":80,\"t0_ns\":100,"
                  "\"spans\":[" +
                      span_record_json(sp) + "]}\n");
}

#if HETSCHED_METRICS_ENABLED
// The macro must gate on BOTH the runtime switch and a nonzero trace id.
TEST(ObsSpan, MacroGatesOnSwitchAndTraceId) {
  obs::span_drain();
  obs::set_span_enabled(false);
  HETSCHED_SPAN_RECORD(5, 1, 0, obs::SpanStage::kDecode, 1, 2);
  EXPECT_TRUE(obs::span_drain().empty());  // disabled: nothing
  obs::set_span_enabled(true);
  HETSCHED_SPAN_RECORD(0, 1, 0, obs::SpanStage::kDecode, 1, 2);
  EXPECT_TRUE(obs::span_drain().empty());  // untraced: nothing
  HETSCHED_SPAN_RECORD(5, 1, 0, obs::SpanStage::kDecode, 1, 2);
  obs::set_span_enabled(false);
  EXPECT_EQ(obs::span_drain().size(), 1u);
}
#endif  // HETSCHED_METRICS_ENABLED

// ---------------------------------------------------------------------
// Flight recorder (obs/flight_recorder.h).
// ---------------------------------------------------------------------

TEST(ObsFlight, RecordCollectRoundTrip) {
  obs::FlightRecorder rec;
  rec.set_shard(7);
  rec.record(/*kind=*/1, /*status=*/0, /*machine=*/2, /*request_id=*/41,
             /*value=*/99, /*trace_id=*/5);
  rec.record(2, 1, 0, 42, 0, 0);
  EXPECT_EQ(rec.recorded(), 2u);
  obs::FlightEntry out[4];
  ASSERT_EQ(rec.collect(out, 4), 2u);
  EXPECT_EQ(out[0].seq, 0u);
  EXPECT_EQ(out[0].shard, 7u);
  EXPECT_EQ(out[0].kind, 1u);
  EXPECT_EQ(out[0].status, 0u);
  EXPECT_EQ(out[0].machine, 2u);
  EXPECT_EQ(out[0].request_id, 41u);
  EXPECT_EQ(out[0].value, 99u);
  EXPECT_EQ(out[0].trace_id, 5u);
  EXPECT_EQ(out[1].seq, 1u);
  EXPECT_EQ(out[1].kind, 2u);
  EXPECT_LE(out[0].t_ns, out[1].t_ns);
}

TEST(ObsFlight, WrapKeepsTheNewestEntries) {
  obs::FlightRecorder rec;
  const std::size_t n = obs::kFlightCapacity + 10;
  for (std::size_t i = 0; i < n; ++i) {
    rec.record(1, 0, 0, /*request_id=*/i, 0, 0);
  }
  std::vector<obs::FlightEntry> out(obs::kFlightCapacity + 16);
  ASSERT_EQ(rec.collect(out.data(), out.size()), obs::kFlightCapacity);
  EXPECT_EQ(out[0].request_id, 10u);  // the 10 oldest were overwritten
  EXPECT_EQ(out[obs::kFlightCapacity - 1].request_id, n - 1);
}

TEST(ObsFlight, DumpWritesParseableJsonl) {
  obs::FlightRecorder rec;
  rec.set_shard(3);
  rec.record(1, 0, 2, 41, 99, 5);
  const std::string path = testing::TempDir() + "/flight_dump_test.jsonl";
  ASSERT_TRUE(obs::flight_dump_path(path.c_str()));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  std::size_t ours = 0;
  while (std::getline(in, line)) {
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    // Other live recorders (none in this binary, but be order-robust) may
    // contribute lines; ours is identified by its field values.
    if (line.find("\"shard\":3") != std::string::npos) {
      ++ours;
      EXPECT_NE(line.find("\"kind\":1"), std::string::npos);
      EXPECT_NE(line.find("\"request_id\":41"), std::string::npos);
      EXPECT_NE(line.find("\"value\":99"), std::string::npos);
      EXPECT_NE(line.find("\"trace_id\":5"), std::string::npos);
    }
  }
  EXPECT_EQ(ours, 1u);
}

#if HETSCHED_METRICS_ENABLED
TEST(ObsFlight, MacroRecordsWhenCompiledIn) {
  obs::FlightRecorder rec;
  HETSCHED_FLIGHT_RECORD(rec, 1, 0, 0, 7, 0, 0);
  EXPECT_EQ(rec.recorded(), 1u);
}
#endif  // HETSCHED_METRICS_ENABLED

// ---------------------------------------------------------------------
// Instrumented paths end to end.
// ---------------------------------------------------------------------

// Exact outcome counts from the OnlinePartitioner instrumentation.  Audit
// builds replay decisions through shadow oracles built on the same
// instrumented paths, inflating the counters, so the exact-count asserts
// only hold in non-audit builds.
#if HETSCHED_METRICS_ENABLED && !HETSCHED_AUDIT_ENABLED
TEST(ObsInstrumentation, AdmitDepartCountsAreExact) {
  obs::Counter warm =
      obs::registry().counter("hetsched_admit_warm_total", "");
  obs::Counter cold =
      obs::registry().counter("hetsched_admit_cold_total", "");
  obs::Counter departs = obs::registry().counter("hetsched_depart_total", "");
  const std::uint64_t warm0 = obs::registry().counter_value(warm);
  const std::uint64_t cold0 = obs::registry().counter_value(cold);
  const std::uint64_t dep0 = obs::registry().counter_value(departs);

  OnlinePartitioner ctl(Platform::from_speeds({1.0, 1.0}),
                        AdmissionKind::kEdf, 1.0);
  const Task t{1, 10};
  const AdmitDecision a = ctl.admit(t);
  const AdmitDecision b = ctl.admit(t);
  ASSERT_TRUE(a.admitted);
  ASSERT_TRUE(b.admitted);
  EXPECT_EQ(obs::registry().counter_value(cold) - cold0, 2u);
  ASSERT_TRUE(ctl.depart(a.id));
  EXPECT_EQ(obs::registry().counter_value(departs) - dep0, 1u);
  const AdmitDecision c2 = ctl.admit(t);  // reuses a's slot -> warm
  ASSERT_TRUE(c2.admitted);
  EXPECT_EQ(obs::registry().counter_value(warm) - warm0, 1u);
}

TEST(ObsInstrumentation, AdmitTraceEventsMatchDecisions) {
  obs::trace_drain();
  obs::set_trace_enabled(true);
  OnlinePartitioner ctl(Platform::from_speeds({1.0}), AdmissionKind::kEdf,
                        1.0);
  const AdmitDecision a = ctl.admit(Task{3, 4});   // fits
  const AdmitDecision b = ctl.admit(Task{9, 10});  // cannot fit
  ASSERT_TRUE(a.admitted);
  ASSERT_FALSE(b.admitted);
  ctl.depart(a.id);
  obs::set_trace_enabled(false);
  const std::vector<obs::TraceEvent> events = obs::trace_drain();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].kind, obs::TraceKind::kAdmit);
  EXPECT_TRUE(events[0].ok);
  EXPECT_EQ(events[0].machine, a.machine);
  EXPECT_EQ(events[1].kind, obs::TraceKind::kAdmit);
  EXPECT_FALSE(events[1].ok);
  EXPECT_EQ(events[2].kind, obs::TraceKind::kDepart);
  EXPECT_TRUE(events[2].ok);
}
#endif  // HETSCHED_METRICS_ENABLED && !HETSCHED_AUDIT_ENABLED

#if !HETSCHED_METRICS_ENABLED
// With the kill switch off, instrumented code paths must record nothing:
// the admit below would otherwise produce trace events.
TEST(ObsInstrumentation, InstrumentationCompiledOutRecordsNothing) {
  obs::trace_drain();
  obs::set_trace_enabled(true);
  OnlinePartitioner ctl(Platform::from_speeds({1.0}), AdmissionKind::kEdf,
                        1.0);
  const AdmitDecision a = ctl.admit(Task{1, 2});
  ASSERT_TRUE(a.admitted);
  obs::set_trace_enabled(false);
  EXPECT_TRUE(obs::trace_drain().empty());
}
#endif  // !HETSCHED_METRICS_ENABLED

}  // namespace
}  // namespace hetsched
