// Tests for the observability layer (src/obs): bucket mapping against
// util/stats.h's Histogram, registry aggregation across threads (the
// TSan-matrix workload for `ctest -L obs`), trace ring semantics, JSONL
// serialization, and the kill-switch contract.
//
// The Counter/Gauge/LatencyHistogram classes and the registry exist in
// BOTH build modes — only the HETSCHED_* macros compile away with
// -DHETSCHED_METRICS=OFF — so most of this file runs unconditionally and
// the macro-gated sections assert the mode-specific behavior.
#include "obs/metrics.h"

#include <cmath>
#include <cstdint>
#include <sstream>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/platform.h"
#include "core/task.h"
#include "io/obs_jsonl.h"
#include "obs/trace.h"
#include "online/online_partitioner.h"
#include "partition/audit.h"
#include "util/stats.h"

namespace hetsched {
namespace {

TEST(ObsBuckets, EdgeCases) {
  EXPECT_EQ(obs::latency_bucket(0), 0u);
  EXPECT_EQ(obs::latency_bucket(1), 0u);
  EXPECT_EQ(obs::latency_bucket(2), 1u);
  EXPECT_EQ(obs::latency_bucket(3), 1u);
  EXPECT_EQ(obs::latency_bucket(4), 2u);
  EXPECT_EQ(obs::latency_bucket(1023), 9u);
  EXPECT_EQ(obs::latency_bucket(1024), 10u);
  EXPECT_EQ(obs::latency_bucket(~std::uint64_t{0}), 63u);
}

TEST(ObsBuckets, EdgesAreConsistent) {
  for (std::size_t b = 0; b < obs::kHistogramBuckets; ++b) {
    EXPECT_EQ(obs::latency_bucket(obs::bucket_lo_ns(b) == 0
                                      ? 0
                                      : obs::bucket_lo_ns(b)),
              b);
    if (b + 1 < obs::kHistogramBuckets) {
      EXPECT_EQ(obs::latency_bucket(obs::bucket_hi_ns(b)), b + 1);
    }
  }
}

// The log-spaced ns buckets must agree, sample for sample, with a
// stats::Histogram(0, 64, 64) fed log2(ns) — the design contract that
// makes the two histogram implementations cross-checkable.
TEST(ObsBuckets, CrossCheckAgainstStatsHistogram) {
  obs::LatencyHistogram h =
      obs::registry().histogram("test_crosscheck_ns", "cross-check");
  Histogram reference(0, 64, 64);

  const obs::HistogramSnapshot before = obs::registry().histogram_snapshot(h);
  std::vector<std::uint64_t> samples;
  std::uint64_t v = 1;
  for (int i = 0; i < 200; ++i) {
    samples.push_back(v);
    v = v * 3 + 1;  // spreads across many octaves, deterministic
    if (v > (std::uint64_t{1} << 40)) v = (v % 977) + 1;
  }
  for (const std::uint64_t ns : samples) {
    h.record_ns(ns);
    reference.add(std::log2(static_cast<double>(ns)));
  }

  const obs::HistogramSnapshot after = obs::registry().histogram_snapshot(h);
  EXPECT_EQ(after.count - before.count, samples.size());
  for (std::size_t b = 0; b < obs::kHistogramBuckets; ++b) {
    EXPECT_EQ(after.buckets[b] - before.buckets[b], reference.bin_count(b))
        << "bucket " << b;
  }
}

TEST(ObsRegistry, RegistrationIsIdempotent) {
  obs::Counter a = obs::registry().counter("test_idem_total", "first");
  obs::Counter b = obs::registry().counter("test_idem_total", "second");
  EXPECT_EQ(a.id(), b.id());
  obs::Gauge g1 = obs::registry().gauge("test_idem_gauge", "");
  obs::Gauge g2 = obs::registry().gauge("test_idem_gauge", "");
  EXPECT_EQ(g1.id(), g2.id());
}

TEST(ObsRegistry, CounterAndGaugeRoundTrip) {
  obs::Counter c = obs::registry().counter("test_roundtrip_total", "");
  const std::uint64_t before = obs::registry().counter_value(c);
  c.inc();
  c.add(41);
  EXPECT_EQ(obs::registry().counter_value(c), before + 42);

  obs::Gauge g = obs::registry().gauge("test_roundtrip_gauge", "");
  g.set(-7);
  EXPECT_EQ(obs::registry().gauge_value(g), -7);
  g.add(10);
  EXPECT_EQ(obs::registry().gauge_value(g), 3);
}

// The TSan-matrix workload: concurrent writers on one counter and one
// histogram, with threads exiting (exercising the retired-block fold)
// while a reader polls snapshots.  Totals must be exact after join.
TEST(ObsRegistry, ConcurrentWritersExactAfterJoin) {
  obs::Counter c = obs::registry().counter("test_mt_total", "");
  obs::LatencyHistogram h = obs::registry().histogram("test_mt_ns", "");
  const std::uint64_t c0 = obs::registry().counter_value(c);
  const std::uint64_t h0 = obs::registry().histogram_snapshot(h).count;

  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  for (int wave = 0; wave < 2; ++wave) {  // second wave re-attaches blocks
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        for (int i = 0; i < kPerThread; ++i) {
          c.inc();
          h.record_ns(static_cast<std::uint64_t>(t * kPerThread + i));
        }
      });
    }
    // Concurrent reader: snapshots must be well-formed (monotone counts),
    // not exact, while writers run.
    const obs::HistogramSnapshot mid = obs::registry().histogram_snapshot(h);
    EXPECT_GE(mid.count, h0);
    for (std::thread& th : threads) th.join();
  }

  EXPECT_EQ(obs::registry().counter_value(c) - c0,
            std::uint64_t{2 * kThreads * kPerThread});
  const obs::HistogramSnapshot snap = obs::registry().histogram_snapshot(h);
  EXPECT_EQ(snap.count - h0, std::uint64_t{2 * kThreads * kPerThread});
}

TEST(ObsRegistry, SnapshotPercentilesAreOrdered) {
  obs::LatencyHistogram h =
      obs::registry().histogram("test_percentile_ns", "");
  for (std::uint64_t ns = 1; ns <= 4096; ++ns) h.record_ns(ns);
  const obs::HistogramSnapshot snap = obs::registry().histogram_snapshot(h);
  const double p50 = snap.percentile_ns(50);
  const double p99 = snap.percentile_ns(99);
  const double p999 = snap.percentile_ns(99.9);
  EXPECT_GT(p50, 0.0);
  EXPECT_LE(p50, p99);
  EXPECT_LE(p99, p999);
  // The p50 of 1..4096 is ~2048; the log-bucket estimate may be off by at
  // most one octave.
  EXPECT_GE(p50, 1024.0);
  EXPECT_LE(p50, 4096.0);
}

TEST(ObsRegistry, ExposeFormat) {
  obs::Counter c = obs::registry().counter("test_expose_total", "help text");
  c.inc();
  const std::string text = obs::registry().expose();
  EXPECT_EQ(text.rfind("hetsched_metrics_enabled ", 0), 0u);
  EXPECT_NE(text.find("# HELP test_expose_total help text"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE test_expose_total counter"),
            std::string::npos);
}

// ---------------------------------------------------------------------
// Kill-switch contract.
// ---------------------------------------------------------------------

#if HETSCHED_METRICS_ENABLED

// With metrics compiled in, the macros must actually bump.
TEST(ObsMacros, MacrosBumpWhenEnabled) {
  static const obs::Counter c =
      obs::registry().counter("test_macro_total", "");
  const std::uint64_t before = obs::registry().counter_value(c);
  HETSCHED_COUNT(c);
  HETSCHED_COUNT_ADD(c, 4);
  EXPECT_EQ(obs::registry().counter_value(c), before + 5);
}

#else  // !HETSCHED_METRICS_ENABLED

// With metrics compiled out, macro arguments are discarded textually —
// this must compile even though no such handle exists anywhere.
TEST(ObsMacros, MacrosDiscardArgumentsWhenDisabled) {
  HETSCHED_COUNT(no_such_handle_anywhere);
  HETSCHED_COUNT_ADD(no_such_handle_anywhere, 123);
  HETSCHED_GAUGE_SET(no_such_handle_anywhere, -1);
  HETSCHED_TIMED(no_such_handle_anywhere);
  HETSCHED_TIMED_SAMPLED(no_such_handle_anywhere);
  HETSCHED_TRACE_EVENT(no_such_kind, true, 0, 0);
  SUCCEED();
}

#endif  // HETSCHED_METRICS_ENABLED

// ---------------------------------------------------------------------
// Trace ring.
// ---------------------------------------------------------------------

TEST(ObsTrace, RecordDrainRoundTrip) {
  obs::trace_drain();  // clear anything earlier tests left behind
  obs::set_trace_enabled(true);
  obs::trace_record(obs::TraceKind::kAdmit, true, 3, 42);
  obs::trace_record(obs::TraceKind::kDepart, false, 0, 7);
  obs::trace_record(obs::TraceKind::kRebalance, true, 0, 2);
  obs::set_trace_enabled(false);

  const std::vector<obs::TraceEvent> events = obs::trace_drain();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].kind, obs::TraceKind::kAdmit);
  EXPECT_TRUE(events[0].ok);
  EXPECT_EQ(events[0].machine, 3u);
  EXPECT_EQ(events[0].value, 42u);
  EXPECT_EQ(events[1].kind, obs::TraceKind::kDepart);
  EXPECT_FALSE(events[1].ok);
  EXPECT_EQ(events[2].kind, obs::TraceKind::kRebalance);
  EXPECT_LT(events[0].seq, events[1].seq);
  EXPECT_LT(events[1].seq, events[2].seq);
  EXPECT_LE(events[0].t_ns, events[1].t_ns);
  // Drain cleared: nothing left.
  EXPECT_TRUE(obs::trace_drain().empty());
}

TEST(ObsTrace, OverwritesAreCountedAsDropped) {
  obs::trace_drain();
  const std::uint64_t dropped0 = obs::trace_dropped();
  obs::set_trace_enabled(true);
  const std::size_t n = obs::kTraceCapacity + 100;
  for (std::size_t i = 0; i < n; ++i) {
    obs::trace_record(obs::TraceKind::kAdmit, true, 0, i);
  }
  obs::set_trace_enabled(false);
  EXPECT_EQ(obs::trace_dropped() - dropped0, 100u);
  const std::vector<obs::TraceEvent> events = obs::trace_drain();
  ASSERT_EQ(events.size(), obs::kTraceCapacity);
  // The survivors are the most recent kTraceCapacity events, in order.
  EXPECT_EQ(events.front().value, 100u);
  EXPECT_EQ(events.back().value, n - 1);
}

TEST(ObsTrace, ConcurrentRecordersKeepGlobalSeqUnique) {
  obs::trace_drain();
  obs::set_trace_enabled(true);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 200;  // fits each thread's ring
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < kPerThread; ++i) {
        obs::trace_record(obs::TraceKind::kAdmit, true,
                          static_cast<std::uint32_t>(t),
                          static_cast<std::uint64_t>(i));
      }
    });
  }
  for (std::thread& th : threads) th.join();
  obs::set_trace_enabled(false);
  const std::vector<obs::TraceEvent> events = obs::trace_drain();
  EXPECT_EQ(events.size(), std::size_t{kThreads * kPerThread});
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_LT(events[i - 1].seq, events[i].seq);  // strictly increasing
  }
}

TEST(ObsTraceJson, EventFormat) {
  obs::TraceEvent ev;
  ev.seq = 17;
  ev.t_ns = 123456789;
  ev.kind = obs::TraceKind::kAdmit;
  ev.ok = true;
  ev.machine = 3;
  ev.value = 42;
  EXPECT_EQ(trace_event_json(ev),
            "{\"seq\":17,\"t_ns\":123456789,\"kind\":\"admit\",\"ok\":true,"
            "\"machine\":3,\"value\":42}");
  std::ostringstream out;
  const std::vector<obs::TraceEvent> events = {ev, ev};
  EXPECT_EQ(write_trace_jsonl(events, out), 2u);
  EXPECT_EQ(out.str(), trace_event_json(ev) + "\n" + trace_event_json(ev) +
                           "\n");
}

// ---------------------------------------------------------------------
// Instrumented paths end to end.
// ---------------------------------------------------------------------

// Exact outcome counts from the OnlinePartitioner instrumentation.  Audit
// builds replay decisions through shadow oracles built on the same
// instrumented paths, inflating the counters, so the exact-count asserts
// only hold in non-audit builds.
#if HETSCHED_METRICS_ENABLED && !HETSCHED_AUDIT_ENABLED
TEST(ObsInstrumentation, AdmitDepartCountsAreExact) {
  obs::Counter warm =
      obs::registry().counter("hetsched_admit_warm_total", "");
  obs::Counter cold =
      obs::registry().counter("hetsched_admit_cold_total", "");
  obs::Counter departs = obs::registry().counter("hetsched_depart_total", "");
  const std::uint64_t warm0 = obs::registry().counter_value(warm);
  const std::uint64_t cold0 = obs::registry().counter_value(cold);
  const std::uint64_t dep0 = obs::registry().counter_value(departs);

  OnlinePartitioner ctl(Platform::from_speeds({1.0, 1.0}),
                        AdmissionKind::kEdf, 1.0);
  const Task t{1, 10};
  const AdmitDecision a = ctl.admit(t);
  const AdmitDecision b = ctl.admit(t);
  ASSERT_TRUE(a.admitted);
  ASSERT_TRUE(b.admitted);
  EXPECT_EQ(obs::registry().counter_value(cold) - cold0, 2u);
  ASSERT_TRUE(ctl.depart(a.id));
  EXPECT_EQ(obs::registry().counter_value(departs) - dep0, 1u);
  const AdmitDecision c2 = ctl.admit(t);  // reuses a's slot -> warm
  ASSERT_TRUE(c2.admitted);
  EXPECT_EQ(obs::registry().counter_value(warm) - warm0, 1u);
}

TEST(ObsInstrumentation, AdmitTraceEventsMatchDecisions) {
  obs::trace_drain();
  obs::set_trace_enabled(true);
  OnlinePartitioner ctl(Platform::from_speeds({1.0}), AdmissionKind::kEdf,
                        1.0);
  const AdmitDecision a = ctl.admit(Task{3, 4});   // fits
  const AdmitDecision b = ctl.admit(Task{9, 10});  // cannot fit
  ASSERT_TRUE(a.admitted);
  ASSERT_FALSE(b.admitted);
  ctl.depart(a.id);
  obs::set_trace_enabled(false);
  const std::vector<obs::TraceEvent> events = obs::trace_drain();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].kind, obs::TraceKind::kAdmit);
  EXPECT_TRUE(events[0].ok);
  EXPECT_EQ(events[0].machine, a.machine);
  EXPECT_EQ(events[1].kind, obs::TraceKind::kAdmit);
  EXPECT_FALSE(events[1].ok);
  EXPECT_EQ(events[2].kind, obs::TraceKind::kDepart);
  EXPECT_TRUE(events[2].ok);
}
#endif  // HETSCHED_METRICS_ENABLED && !HETSCHED_AUDIT_ENABLED

#if !HETSCHED_METRICS_ENABLED
// With the kill switch off, instrumented code paths must record nothing:
// the admit below would otherwise produce trace events.
TEST(ObsInstrumentation, InstrumentationCompiledOutRecordsNothing) {
  obs::trace_drain();
  obs::set_trace_enabled(true);
  OnlinePartitioner ctl(Platform::from_speeds({1.0}), AdmissionKind::kEdf,
                        1.0);
  const AdmitDecision a = ctl.admit(Task{1, 2});
  ASSERT_TRUE(a.admitted);
  obs::set_trace_enabled(false);
  EXPECT_TRUE(obs::trace_drain().empty());
}
#endif  // !HETSCHED_METRICS_ENABLED

}  // namespace
}  // namespace hetsched
