// Tests for per-task execution-budget sensitivity
// (experiments/sensitivity.h).
#include "experiments/sensitivity.h"

#include <gtest/gtest.h>

#include "gen/taskset_gen.h"
#include "partition/first_fit.h"
#include "util/rng.h"

namespace hetsched {
namespace {

TEST(Sensitivity, SingleTaskSlackIsCapacityRatio) {
  // One task w = 0.25 on a unit machine: c can grow 4x (to w = 1.0).
  const TaskSet tasks({{1, 4}});
  const Platform platform = Platform::from_speeds({1.0});
  const auto slack =
      exec_sensitivity(tasks, platform, AdmissionKind::kEdf, 1.0);
  ASSERT_EQ(slack.size(), 1u);
  EXPECT_NEAR(slack[0].max_exec_scale, 4.0, 0.51);  // quantized to integers
}

TEST(Sensitivity, CapReportedWhenUnbounded) {
  const TaskSet tasks({{1, 1000}});
  const Platform platform = Platform::from_speeds({8.0});
  SensitivityOptions opts;
  opts.factor_cap = 4.0;
  const auto slack =
      exec_sensitivity(tasks, platform, AdmissionKind::kEdf, 1.0, opts);
  EXPECT_DOUBLE_EQ(slack[0].max_exec_scale, 4.0);
}

TEST(Sensitivity, TightSystemHasLittleSlack) {
  // Two w = 0.5 tasks sharing a unit machine: neither can grow much.
  const TaskSet tasks({{50, 100}, {50, 100}});
  const Platform platform = Platform::from_speeds({1.0});
  const auto slack =
      exec_sensitivity(tasks, platform, AdmissionKind::kEdf, 1.0);
  for (const TaskSlack& s : slack) {
    EXPECT_LT(s.max_exec_scale, 1.05);
    EXPECT_GE(s.max_exec_scale, 1.0);
  }
}

TEST(Sensitivity, ScaledSystemStillAccepted) {
  // The reported factor must itself keep the system accepted.
  Rng rng(7);
  TasksetSpec spec;
  spec.n = 8;
  spec.total_utilization = 2.0;
  spec.periods = PeriodSpec::uniform(100, 1000);
  const TaskSet tasks = generate_taskset(rng, spec);
  const Platform platform = Platform::from_speeds({1.0, 1.0, 1.5});
  ASSERT_TRUE(first_fit_accepts(tasks, platform, AdmissionKind::kEdf, 1.0));
  const auto slack =
      exec_sensitivity(tasks, platform, AdmissionKind::kEdf, 1.0);
  for (const TaskSlack& s : slack) {
    TaskSet scaled;
    for (std::size_t i = 0; i < tasks.size(); ++i) {
      Task t = tasks[i];
      if (i == s.task_index) {
        // Slightly inside the reported boundary to absorb the bisection
        // tolerance and integer rounding.
        t.exec = std::max<std::int64_t>(
            1, static_cast<std::int64_t>(
                   (s.max_exec_scale - 0.01) * static_cast<double>(t.exec)));
      }
      scaled.push_back(t);
    }
    EXPECT_TRUE(first_fit_accepts(scaled, platform, AdmissionKind::kEdf, 1.0))
        << "task " << s.task_index << " scale " << s.max_exec_scale;
  }
}

TEST(Sensitivity, WorksWithRmsAdmission) {
  const TaskSet tasks({{1, 10}, {1, 10}});
  const Platform platform = Platform::from_speeds({1.0});
  const auto slack =
      exec_sensitivity(tasks, platform, AdmissionKind::kRmsLiuLayland, 1.0);
  ASSERT_EQ(slack.size(), 2u);
  // Two tasks on one unit machine: combined bound 2(sqrt2-1) ~ 0.828; each
  // 0.1 task can grow to roughly 0.728 -> factor ~7.3.
  for (const TaskSlack& s : slack) {
    EXPECT_GT(s.max_exec_scale, 6.0);
    EXPECT_LT(s.max_exec_scale, 8.0);
  }
}

TEST(SensitivityDeathTest, RejectsInfeasibleBase) {
  const TaskSet tasks({{3, 2}});
  const Platform platform = Platform::from_speeds({1.0});
  EXPECT_DEATH(exec_sensitivity(tasks, platform, AdmissionKind::kEdf, 1.0),
               "accepted base system");
}

}  // namespace
}  // namespace hetsched
