// Tests for the curated scenario library (gen/scenarios.h).
#include "gen/scenarios.h"

#include <gtest/gtest.h>

#include "baselines/heuristics.h"
#include "lp/feasibility_lp.h"
#include "partition/first_fit.h"
#include "sim/event_sim.h"

namespace hetsched {
namespace {

TEST(Scenarios, AllWellFormed) {
  for (const Scenario& s : all_scenarios()) {
    EXPECT_FALSE(s.name.empty());
    EXPECT_FALSE(s.description.empty());
    EXPECT_GE(s.tasks.size(), 8u);
    EXPECT_GE(s.platform.size(), 3u);
    EXPECT_EQ(s.task_names.size(), s.tasks.size());
    for (const std::string& name : s.task_names) EXPECT_FALSE(name.empty());
    for (const Task& t : s.tasks) EXPECT_TRUE(t.valid());
  }
}

TEST(Scenarios, NamesAreUnique) {
  const auto scenarios = all_scenarios();
  for (std::size_t a = 0; a < scenarios.size(); ++a) {
    for (std::size_t b = a + 1; b < scenarios.size(); ++b) {
      EXPECT_NE(scenarios[a].name, scenarios[b].name);
    }
  }
}

TEST(Scenarios, AllPassTheGlobalNecessaryCondition) {
  for (const Scenario& s : all_scenarios()) {
    EXPECT_TRUE(global_necessary_condition(s.tasks, s.platform)) << s.name;
  }
}

TEST(Scenarios, AllAreSchedulableAsShipped) {
  // The scenarios are meant to demo positive placements: the raw EDF test
  // must accept each, and the LP must agree.
  for (const Scenario& s : all_scenarios()) {
    EXPECT_TRUE(
        first_fit_accepts(s.tasks, s.platform, AdmissionKind::kEdf, 1.0))
        << s.name;
    EXPECT_TRUE(lp_feasible_oracle(s.tasks, s.platform)) << s.name;
  }
}

TEST(Scenarios, AcceptedPlacementsReplayExactly) {
  for (const Scenario& s : all_scenarios()) {
    const PartitionResult res =
        first_fit_partition(s.tasks, s.platform, AdmissionKind::kEdf, 1.0);
    ASSERT_TRUE(res.feasible) << s.name;
    std::vector<Rational> speeds;
    for (std::size_t j = 0; j < s.platform.size(); ++j) {
      speeds.push_back(s.platform.speed_exact(j));
    }
    SimLimits limits;
    limits.max_jobs = 300'000;
    const PartitionSimOutcome sim =
        simulate_partition(res.tasks_per_machine, speeds, SchedPolicy::kEdf,
                           limits);
    EXPECT_TRUE(sim.schedulable) << s.name;
  }
}

TEST(Scenarios, MobileSocHasTasksNeedingBigCores) {
  const Scenario s = mobile_soc_scenario();
  // At least one task is denser than a little core: heterogeneity matters.
  EXPECT_GT(s.tasks.max_utilization(), 1.0);
}

}  // namespace
}  // namespace hetsched
