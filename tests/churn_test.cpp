// Tests for the churn harness: bookkeeping invariants, the clairvoyant
// comparison, rebalancing accounting, and determinism.
#include <gtest/gtest.h>

#include "experiments/churn.h"
#include "gen/platform_gen.h"
#include "util/rng.h"

namespace hetsched {
namespace {

ChurnTrace trace_for(std::uint64_t seed, std::size_t arrivals,
                     double arrival_rate) {
  ChurnSpec spec;
  spec.arrivals = arrivals;
  spec.arrival_rate = arrival_rate;
  Rng rng(seed);
  return generate_churn_trace(rng, spec);
}

TEST(RunChurn, UnderloadAdmitsEverything) {
  // A near-idle system: trickle arrivals onto ample capacity.
  const ChurnTrace trace = trace_for(3, 64, 0.05);
  ChurnOptions options;
  const ChurnResult r = run_churn(Platform::identical(16), trace, options);
  EXPECT_EQ(r.arrivals, 64u);
  EXPECT_EQ(r.online_admitted, 64u);
  EXPECT_EQ(r.clairvoyant_admitted, 64u);
  EXPECT_EQ(r.regret, 0u);
  EXPECT_EQ(r.inverse_regret, 0u);
  EXPECT_DOUBLE_EQ(r.online_acceptance(), 1.0);
  EXPECT_GE(r.peak_resident, 1u);
}

TEST(RunChurn, OverloadRejectsAndClairvoyantDominatesEarly) {
  // Hammer one slow machine: most arrivals must be rejected, and counters
  // stay consistent.
  const ChurnTrace trace = trace_for(4, 200, 20.0);
  ChurnOptions options;
  const ChurnResult r = run_churn(Platform::identical(1), trace, options);
  EXPECT_EQ(r.arrivals, 200u);
  EXPECT_LT(r.online_admitted, 200u);
  EXPECT_LE(r.online_admitted,
            r.clairvoyant_admitted + r.inverse_regret);
  EXPECT_GT(r.online_acceptance(), 0.0);
  EXPECT_LE(r.online_acceptance(), 1.0);
}

TEST(RunChurn, RebalanceAccounting) {
  const ChurnTrace trace = trace_for(5, 128, 4.0);
  ChurnOptions options;
  options.rebalance_every = 16;
  const ChurnResult r =
      run_churn(geometric_platform(4, 1.5), trace, options);
  EXPECT_EQ(r.rebalances, 128u / 16u);
  EXPECT_LE(r.rebalances_applied, r.rebalances);
  if (r.rebalances_applied == 0) {
    EXPECT_EQ(r.migrations, 0u);
  }
}

TEST(RunChurn, DeterministicAcrossRuns) {
  const ChurnTrace trace = trace_for(6, 150, 8.0);
  ChurnOptions options;
  options.rebalance_every = 32;
  const Platform platform = geometric_platform(3, 2.0);
  const ChurnResult a = run_churn(platform, trace, options);
  const ChurnResult b = run_churn(platform, trace, options);
  EXPECT_EQ(a.online_admitted, b.online_admitted);
  EXPECT_EQ(a.clairvoyant_admitted, b.clairvoyant_admitted);
  EXPECT_EQ(a.regret, b.regret);
  EXPECT_EQ(a.inverse_regret, b.inverse_regret);
  EXPECT_EQ(a.migrations, b.migrations);
  EXPECT_EQ(a.peak_resident, b.peak_resident);
}

TEST(RunChurn, EnginesAgree) {
  const ChurnTrace trace = trace_for(7, 150, 8.0);
  const Platform platform = geometric_platform(3, 2.0);
  ChurnOptions naive, tree;
  naive.engine = PartitionEngine::kNaive;
  tree.engine = PartitionEngine::kSegmentTree;
  const ChurnResult a = run_churn(platform, trace, naive);
  const ChurnResult b = run_churn(platform, trace, tree);
  EXPECT_EQ(a.online_admitted, b.online_admitted);
  EXPECT_EQ(a.clairvoyant_admitted, b.clairvoyant_admitted);
  EXPECT_EQ(a.regret, b.regret);
}

TEST(ChurnResult, ToStringMentionsKeyCounters) {
  ChurnResult r;
  r.arrivals = 10;
  r.online_admitted = 8;
  const std::string s = r.to_string();
  EXPECT_NE(s.find("arrivals=10"), std::string::npos);
  EXPECT_NE(s.find("regret="), std::string::npos);
}

}  // namespace
}  // namespace hetsched
