// Tests for the churn-trace text format: grammar, validation, and exact
// round-tripping of generated traces.
#include <gtest/gtest.h>

#include "gen/churn_gen.h"
#include "io/trace_format.h"
#include "util/rng.h"

namespace hetsched {
namespace {

TEST(TraceFormat, ParsesMinimalTrace) {
  const auto r = parse_trace_string(
      "# comment\n"
      "platform 1 3/2\n"
      "arrive 0.5 0 2 10\n"
      "arrive 1.5 1 9 20\n"
      "depart 2.5 0\n");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value->platform.size(), 2u);
  ASSERT_EQ(r.value->trace.events.size(), 3u);
  EXPECT_EQ(r.value->trace.arrivals, 2u);
  EXPECT_EQ(r.value->trace.events[0].kind, ChurnEvent::Kind::kArrival);
  EXPECT_EQ(r.value->trace.events[0].params.exec, 2);
  EXPECT_EQ(r.value->trace.events[2].kind, ChurnEvent::Kind::kDeparture);
  EXPECT_EQ(r.value->trace.events[2].task, 0u);
}

TEST(TraceFormat, TasksMayStayResident) {
  const auto r = parse_trace_string("platform 1\narrive 1 0 1 4\n");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value->trace.arrivals, 1u);
}

TEST(TraceFormat, ErrorsCarryLineNumbers) {
  struct Case {
    const char* text;
    const char* want;  // substring of the error message
    std::size_t line;
  };
  const Case cases[] = {
      {"arrive 1 0 1 4\n", "missing platform", 1},
      {"platform 1\nplatform 1\n", "duplicate platform", 2},
      {"platform 1\narrive 2 0 1 4\narrive 1 1 1 4\n", "non-decreasing", 3},
      {"platform 1\narrive 1 0 1 4\narrive 2 0 1 4\n", "arrives twice", 3},
      {"platform 1\ndepart 1 0\n", "not resident", 2},
      {"platform 1\narrive 1 0 1 4\ndepart 2 0\ndepart 3 0\n", "not resident",
       4},
      {"platform 1\narrive x 0 1 4\n", "bad time", 2},
      {"platform 1\narrive 1 0 0 4\n", "positive", 2},
      {"platform 1\narrive 1 0 1\n", "arrive needs", 2},
      {"platform 0\n", "positive", 1},
      {"platform 1\nfrobnicate\n", "unknown directive", 2},
      // Non-finite times must be rejected outright: NaN would also slip
      // past the non-decreasing check (NaN < x is false for every x).
      {"platform 1\narrive nan 0 1 4\n", "bad time", 2},
      {"platform 1\narrive inf 0 1 4\n", "bad time", 2},
      {"platform 1\narrive 1 0 1 4\ndepart nan 0\n", "bad time", 3},
      {"platform 1\narrive 1 -3 1 4\n", "bad task number", 2},
      {"platform 1\narrive 1 0 1 4\ndepart 2 -1\n", "bad task number", 3},
      {"platform 1\narrive 1 0 -1 4\n", "positive", 2},
      {"platform 1\narrive 1 0 1 4\ndepart 2\n", "depart needs", 3},
      {"platform 1\narrive 1 0\n", "arrive needs", 2},
      // A sixth token is an optional constrained deadline; a seventh is
      // still an arity error, and the deadline must lie in (0, period].
      {"platform 1\narrive 1 0 1 4 3 7\n", "arrive needs", 2},
      {"platform 1\narrive 1 0 1 4 9\n", "deadline", 2},
      {"platform 1\narrive 1 0 1 4 0\n", "deadline", 2},
      {"platform 1\narrive 1 0 1 4 -2\n", "deadline", 2},
  };
  for (const Case& c : cases) {
    const auto r = parse_trace_string(c.text);
    ASSERT_FALSE(r.ok()) << c.text;
    EXPECT_EQ(r.error->line, c.line) << c.text;
    EXPECT_NE(r.error->message.find(c.want), std::string::npos)
        << "got: " << r.error->message;
  }
}

TEST(TraceFormat, ParsesOptionalDeadlineColumn) {
  const auto r = parse_trace_string(
      "platform 1\n"
      "arrive 0.5 0 2 10 6\n"   // constrained: D = 6 < T = 10
      "arrive 1.5 1 3 12\n"     // implicit (no column)
      "arrive 2.5 2 4 8 8\n");  // explicit D == T, kept verbatim
  ASSERT_TRUE(r.ok()) << r.error->to_string();
  ASSERT_EQ(r.value->trace.events.size(), 3u);
  EXPECT_EQ(r.value->trace.events[0].params.deadline, 6);
  EXPECT_EQ(r.value->trace.events[0].params.effective_deadline(), 6);
  EXPECT_EQ(r.value->trace.events[1].params.deadline, 0);
  EXPECT_EQ(r.value->trace.events[1].params.effective_deadline(), 12);
  EXPECT_EQ(r.value->trace.events[2].params.deadline, 8);
}

// Legacy traces (no deadline column anywhere) must format byte-for-byte
// as before the column existed: the column is emitted only when set.
TEST(TraceFormat, ImplicitTasksOmitDeadlineColumn) {
  ChurnInstance inst;
  inst.platform = Platform::from_speeds({1.0});
  ChurnEvent ev;
  ev.kind = ChurnEvent::Kind::kArrival;
  ev.time = 1.0;
  ev.task = 0;
  ev.params = Task{2, 10};
  inst.trace.events.push_back(ev);
  inst.trace.arrivals = 1;
  const std::string text = format_trace(inst);
  EXPECT_NE(text.find("arrive 1 0 2 10\n"), std::string::npos) << text;
  EXPECT_EQ(text.find("arrive 1 0 2 10 "), std::string::npos) << text;

  ev.params = Task{2, 10, 7};
  inst.trace.events[0] = ev;
  EXPECT_NE(format_trace(inst).find("arrive 1 0 2 10 7\n"), std::string::npos);
}

TEST(TraceFormat, GeneratedTraceRoundTripsExactly) {
  ChurnSpec spec;
  spec.arrivals = 100;
  Rng rng(11);
  ChurnInstance inst;
  inst.platform = Platform::from_speeds({1.0, 1.5, 2.25});
  inst.trace = generate_churn_trace(rng, spec);

  const auto r = parse_trace_string(format_trace(inst));
  ASSERT_TRUE(r.ok()) << r.error->to_string();
  EXPECT_EQ(r.value->platform.size(), 3u);
  ASSERT_EQ(r.value->trace.events.size(), inst.trace.events.size());
  EXPECT_EQ(r.value->trace.arrivals, inst.trace.arrivals);
  for (std::size_t i = 0; i < inst.trace.events.size(); ++i) {
    const ChurnEvent& a = inst.trace.events[i];
    const ChurnEvent& b = r.value->trace.events[i];
    EXPECT_EQ(a.kind, b.kind) << "event " << i;
    EXPECT_EQ(a.time, b.time) << "event " << i;  // bitwise: max_digits10
    EXPECT_EQ(a.task, b.task) << "event " << i;
    if (a.kind == ChurnEvent::Kind::kArrival) {
      EXPECT_EQ(a.params, b.params) << "event " << i;
    }
  }
}

// Property: format -> parse is the identity on generated traces, across
// many seeds and churn shapes (short/long, slow/fast departure mixes).
TEST(TraceFormat, RandomizedRoundTripProperty) {
  for (std::uint64_t seed = 1; seed <= 24; ++seed) {
    ChurnSpec spec;
    spec.arrivals = 20 + 15 * (seed % 5);
    spec.arrival_rate = 0.25 * static_cast<double>(1 + seed % 4);
    Rng rng(seed * 0x9E3779B9ULL);
    ChurnInstance inst;
    inst.platform =
        Platform::from_speeds({1.0, 1.0 + 0.5 * static_cast<double>(seed % 3)});
    inst.trace = generate_churn_trace(rng, spec);

    const std::string text = format_trace(inst);
    const auto r = parse_trace_string(text);
    ASSERT_TRUE(r.ok()) << "seed " << seed << ": " << r.error->to_string();
    ASSERT_EQ(r.value->trace.events.size(), inst.trace.events.size())
        << "seed " << seed;
    EXPECT_EQ(r.value->trace.arrivals, inst.trace.arrivals) << "seed " << seed;
    for (std::size_t i = 0; i < inst.trace.events.size(); ++i) {
      const ChurnEvent& a = inst.trace.events[i];
      const ChurnEvent& b = r.value->trace.events[i];
      ASSERT_EQ(a.kind, b.kind) << "seed " << seed << " event " << i;
      ASSERT_EQ(a.time, b.time) << "seed " << seed << " event " << i;
      ASSERT_EQ(a.task, b.task) << "seed " << seed << " event " << i;
      if (a.kind == ChurnEvent::Kind::kArrival) {
        ASSERT_EQ(a.params, b.params) << "seed " << seed << " event " << i;
      }
    }
    // And the second generation is byte-stable: format(parse(format(x)))
    // == format(x), so traces survive repeated edit/save cycles.
    EXPECT_EQ(format_trace(*r.value), text) << "seed " << seed;
  }
}

// Same property over constrained traces: a mixed implicit/explicit
// deadline column survives format -> parse -> format byte-for-byte, and
// Task::operator== (which includes the deadline) holds event-by-event.
TEST(TraceFormat, ConstrainedRoundTripProperty) {
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    ChurnSpec spec;
    spec.arrivals = 30 + 10 * (seed % 4);
    spec.constrained_fraction = 0.25 * static_cast<double>(1 + seed % 4);
    spec.deadline_ratio_lo = 0.3;
    spec.deadline_ratio_hi = 1.0;
    Rng rng(seed * 0xD1B54A32D192ED03ULL);
    ChurnInstance inst;
    inst.platform = Platform::from_speeds({1.0, 2.0});
    inst.trace = generate_churn_trace(rng, spec);

    bool saw_constrained = false;
    for (const ChurnEvent& ev : inst.trace.events) {
      if (ev.kind == ChurnEvent::Kind::kArrival && ev.params.deadline != 0) {
        saw_constrained = true;
      }
    }
    if (spec.constrained_fraction >= 0.5) {
      EXPECT_TRUE(saw_constrained) << "seed " << seed;
    }

    const std::string text = format_trace(inst);
    const auto r = parse_trace_string(text);
    ASSERT_TRUE(r.ok()) << "seed " << seed << ": " << r.error->to_string();
    ASSERT_EQ(r.value->trace.events.size(), inst.trace.events.size());
    for (std::size_t i = 0; i < inst.trace.events.size(); ++i) {
      const ChurnEvent& a = inst.trace.events[i];
      const ChurnEvent& b = r.value->trace.events[i];
      ASSERT_EQ(a.kind, b.kind) << "seed " << seed << " event " << i;
      if (a.kind == ChurnEvent::Kind::kArrival) {
        ASSERT_EQ(a.params, b.params) << "seed " << seed << " event " << i;
      }
    }
    EXPECT_EQ(format_trace(*r.value), text) << "seed " << seed;
  }
}

// The deadline knobs default off and must not perturb the RNG stream:
// a legacy spec generates bit-identical traces with and without the
// fields compiled in (guarded draws), pinned by a golden comparison of
// two generators at the same seed.
TEST(TraceFormat, LegacySpecUnchangedByDeadlineKnobs) {
  ChurnSpec legacy;
  legacy.arrivals = 64;
  ChurnSpec zeroed = legacy;
  zeroed.constrained_fraction = 0.0;  // explicit zero, same meaning
  Rng r1(77), r2(77);
  const ChurnTrace a = generate_churn_trace(r1, legacy);
  const ChurnTrace b = generate_churn_trace(r2, zeroed);
  ASSERT_EQ(a.events.size(), b.events.size());
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(a.events[i].time, b.events[i].time) << i;
    EXPECT_EQ(a.events[i].params, b.events[i].params) << i;
    EXPECT_EQ(a.events[i].params.deadline, 0) << i;
  }
}

TEST(TraceFormat, LoadReportsMissingFile) {
  const auto r = load_trace("/nonexistent/path/trace.txt");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error->message.find("cannot open"), std::string::npos);
}

}  // namespace
}  // namespace hetsched
