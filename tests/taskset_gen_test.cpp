// Unit tests for task-set generation (gen/taskset_gen.h).
#include "gen/taskset_gen.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>

namespace hetsched {
namespace {

TEST(UUniFast, SumsToTarget) {
  Rng rng(1);
  for (int iter = 0; iter < 50; ++iter) {
    const auto utils = uunifast(rng, 8, 3.5);
    const double sum = std::accumulate(utils.begin(), utils.end(), 0.0);
    EXPECT_NEAR(sum, 3.5, 1e-9);
  }
}

TEST(UUniFast, AllNonNegative) {
  Rng rng(2);
  for (int iter = 0; iter < 50; ++iter) {
    for (const double u : uunifast(rng, 16, 2.0)) EXPECT_GE(u, 0.0);
  }
}

TEST(UUniFast, SingleTaskGetsEverything) {
  Rng rng(3);
  const auto utils = uunifast(rng, 1, 0.7);
  ASSERT_EQ(utils.size(), 1u);
  EXPECT_DOUBLE_EQ(utils[0], 0.7);
}

TEST(UUniFast, MarginalDistributionMeanIsUniform) {
  // Each u_i has expectation U/n over the simplex.
  Rng rng(4);
  constexpr int kTrials = 5000;
  constexpr std::size_t kN = 4;
  std::vector<double> means(kN, 0.0);
  for (int t = 0; t < kTrials; ++t) {
    const auto utils = uunifast(rng, kN, 1.0);
    for (std::size_t i = 0; i < kN; ++i) means[i] += utils[i];
  }
  for (std::size_t i = 0; i < kN; ++i) {
    EXPECT_NEAR(means[i] / kTrials, 0.25, 0.02) << "component " << i;
  }
}

TEST(UUniFastDiscard, RespectsCap) {
  Rng rng(5);
  for (int iter = 0; iter < 50; ++iter) {
    const auto utils = uunifast_discard(rng, 8, 4.0, 0.8);
    for (const double u : utils) EXPECT_LE(u, 0.8);
    EXPECT_NEAR(std::accumulate(utils.begin(), utils.end(), 0.0), 4.0, 1e-9);
  }
}

TEST(UUniFastDiscardDeathTest, ImpossibleCapAborts) {
  Rng rng(6);
  EXPECT_DEATH(uunifast_discard(rng, 4, 3.0, 0.5), "unreachable");
}

TEST(PeriodSpec, LogUniformInRange) {
  Rng rng(7);
  const PeriodSpec spec = PeriodSpec::log_uniform(10, 1000);
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t p = spec.draw(rng);
    EXPECT_GE(p, 10);
    EXPECT_LE(p, 1000);
  }
}

TEST(PeriodSpec, LogUniformDecadesBalanced) {
  Rng rng(8);
  const PeriodSpec spec = PeriodSpec::log_uniform(10, 1000);
  int low = 0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) low += (spec.draw(rng) < 100);
  EXPECT_NEAR(static_cast<double>(low) / kN, 0.5, 0.05);
}

TEST(PeriodSpec, UniformInRange) {
  Rng rng(9);
  const PeriodSpec spec = PeriodSpec::uniform(5, 15);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t p = spec.draw(rng);
    EXPECT_GE(p, 5);
    EXPECT_LE(p, 15);
    seen.insert(p);
  }
  EXPECT_EQ(seen.size(), 11u);  // all values hit
}

TEST(PeriodSpec, HarmonicPowersOfTwoTimesBase) {
  Rng rng(10);
  const PeriodSpec spec = PeriodSpec::harmonic(10, 3);
  for (int i = 0; i < 500; ++i) {
    const std::int64_t p = spec.draw(rng);
    EXPECT_TRUE(p == 10 || p == 20 || p == 40 || p == 80) << p;
  }
}

TEST(PeriodSpec, ChoiceDrawsOnlyFromSet) {
  Rng rng(11);
  const PeriodSpec spec = PeriodSpec::choice({3, 7, 11});
  for (int i = 0; i < 300; ++i) {
    const std::int64_t p = spec.draw(rng);
    EXPECT_TRUE(p == 3 || p == 7 || p == 11);
  }
}

TEST(PeriodSpec, SimFriendlyPeriodsDivide2520) {
  Rng rng(12);
  const PeriodSpec spec = PeriodSpec::sim_friendly();
  for (int i = 0; i < 500; ++i) {
    EXPECT_EQ(2520 % spec.draw(rng), 0);
  }
}

TEST(RealizeTaskset, QuantizesToValidTasks) {
  const std::vector<double> utils{0.5, 0.333, 0.0001};
  const std::vector<std::int64_t> periods{10, 9, 100};
  const TaskSet ts = realize_taskset(utils, periods);
  ASSERT_EQ(ts.size(), 3u);
  EXPECT_EQ(ts[0].exec, 5);
  EXPECT_EQ(ts[1].exec, 3);
  EXPECT_EQ(ts[2].exec, 1);  // clamped up to 1
  for (const Task& t : ts) EXPECT_TRUE(t.valid());
}

TEST(RealizeTaskset, AllowsUtilizationAboveOne) {
  // Tasks denser than a unit machine (they need fast machines) survive.
  const std::vector<double> utils{2.5};
  const std::vector<std::int64_t> periods{4};
  const TaskSet ts = realize_taskset(utils, periods);
  EXPECT_EQ(ts[0].exec, 10);
}

TEST(GenerateTaskset, MatchesSpecSizeAndRoughUtilization) {
  Rng rng(13);
  TasksetSpec spec;
  spec.n = 20;
  spec.total_utilization = 5.0;
  spec.max_task_utilization = 1.0;
  spec.periods = PeriodSpec::uniform(100, 1000);
  const TaskSet ts = generate_taskset(rng, spec);
  EXPECT_EQ(ts.size(), 20u);
  // Quantization drifts the total a little; periods >= 100 keep it < 1%-ish.
  EXPECT_NEAR(ts.total_utilization(), 5.0, 0.25);
}

TEST(GenerateTaskset, DeterministicGivenSeed) {
  TasksetSpec spec;
  spec.n = 8;
  spec.total_utilization = 2.0;
  Rng a(99), b(99);
  const TaskSet ta = generate_taskset(a, spec);
  const TaskSet tb = generate_taskset(b, spec);
  ASSERT_EQ(ta.size(), tb.size());
  for (std::size_t i = 0; i < ta.size(); ++i) {
    EXPECT_EQ(ta[i], tb[i]);
  }
}

}  // namespace
}  // namespace hetsched
