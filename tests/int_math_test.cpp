// Unit tests for overflow-checked integer helpers (util/int_math.h) and
// the 128-bit widening type (util/int128.h).
#include "util/int_math.h"

#include <gtest/gtest.h>

#include "util/int128.h"

#include <cmath>
#include <limits>
#include <vector>

namespace hetsched {
namespace {

constexpr std::int64_t kMax = std::numeric_limits<std::int64_t>::max();
constexpr std::int64_t kMin = std::numeric_limits<std::int64_t>::min();

TEST(IntMath, CheckedAddNormal) {
  EXPECT_EQ(checked_add(2, 3), 5);
  EXPECT_EQ(checked_add(-2, 3), 1);
}

TEST(IntMath, CheckedAddOverflow) {
  EXPECT_FALSE(checked_add(kMax, 1).has_value());
  EXPECT_FALSE(checked_add(kMin, -1).has_value());
  EXPECT_TRUE(checked_add(kMax, 0).has_value());
}

TEST(IntMath, CheckedSubOverflow) {
  EXPECT_EQ(checked_sub(5, 7), -2);
  EXPECT_FALSE(checked_sub(kMin, 1).has_value());
}

TEST(IntMath, CheckedMulNormalAndOverflow) {
  EXPECT_EQ(checked_mul(6, 7), 42);
  EXPECT_FALSE(checked_mul(kMax, 2).has_value());
  EXPECT_EQ(checked_mul(kMax, 1), kMax);
}

TEST(IntMath, Gcd) {
  EXPECT_EQ(gcd64(12, 18), 6);
  EXPECT_EQ(gcd64(0, 5), 5);
  EXPECT_EQ(gcd64(0, 0), 0);
  EXPECT_EQ(gcd64(-12, 18), 6);
}

TEST(IntMath, CheckedLcm) {
  EXPECT_EQ(checked_lcm(4, 6), 12);
  EXPECT_EQ(checked_lcm(0, 6), 0);
  EXPECT_FALSE(checked_lcm(kMax, kMax - 1).has_value());
}

TEST(IntMath, Hyperperiod) {
  const std::vector<std::int64_t> ps{4, 6, 10};
  EXPECT_EQ(hyperperiod(ps), 60);
}

TEST(IntMath, HyperperiodOverflowDetected) {
  // Pairwise-coprime large primes overflow the lcm.
  const std::vector<std::int64_t> ps{1000000007, 1000000009, 998244353};
  EXPECT_FALSE(hyperperiod(ps).has_value());
}

TEST(IntMath, HyperperiodSingleton) {
  const std::vector<std::int64_t> ps{7};
  EXPECT_EQ(hyperperiod(ps), 7);
}

TEST(IntMath, FloorDiv) {
  EXPECT_EQ(floor_div(7, 2), 3);
  EXPECT_EQ(floor_div(-7, 2), -4);
  EXPECT_EQ(floor_div(7, -2), -4);
  EXPECT_EQ(floor_div(-7, -2), 3);
  EXPECT_EQ(floor_div(6, 2), 3);
}

TEST(IntMath, CeilDiv) {
  EXPECT_EQ(ceil_div(7, 2), 4);
  EXPECT_EQ(ceil_div(-7, 2), -3);
  EXPECT_EQ(ceil_div(7, -2), -3);
  EXPECT_EQ(ceil_div(-7, -2), 4);
  EXPECT_EQ(ceil_div(6, 2), 3);
}

// Boundary coverage at the INT64 extremes (run under UBSan in CI: every
// operation here must be overflow-checked, never wrap).
TEST(IntMath, CheckedMulNearInt64Max) {
  // floor(sqrt(2^63 - 1)) = 3037000499: the largest n with n * n <= kMax.
  constexpr std::int64_t kSqrtMax = 3'037'000'499;
  EXPECT_EQ(checked_mul(kSqrtMax, kSqrtMax), kSqrtMax * kSqrtMax);
  EXPECT_EQ(checked_mul(kSqrtMax + 1, kSqrtMax + 1), std::nullopt);
  EXPECT_EQ(checked_mul(kMax, 1), kMax);
  EXPECT_EQ(checked_mul(kMax, 2), std::nullopt);
  EXPECT_EQ(checked_mul(kMax / 2, 2), kMax - 1);
  // The one negation that does not fit: -kMin == 2^63 > kMax.
  EXPECT_EQ(checked_mul(kMin, -1), std::nullopt);
  EXPECT_EQ(checked_mul(kMin, 1), kMin);
}

TEST(IntMath, CheckedAddSubAtExtremes) {
  EXPECT_EQ(checked_add(kMax, 0), kMax);
  EXPECT_EQ(checked_add(kMin, -1), std::nullopt);
  EXPECT_EQ(checked_add(kMax, kMin), -1);
  EXPECT_EQ(checked_sub(0, kMin), std::nullopt);  // -kMin overflows
  EXPECT_EQ(checked_sub(-1, kMax), kMin);
}

TEST(IntMath, CheckedLcmAtInt64Boundary) {
  EXPECT_EQ(checked_lcm(kMax, kMax), kMax);
  // kMax and kMax - 1 are coprime, so their lcm is their (overflowing)
  // product.
  EXPECT_EQ(checked_lcm(kMax - 1, kMax), std::nullopt);
  EXPECT_EQ(checked_lcm(std::int64_t{1} << 62, 2), std::int64_t{1} << 62);
}

TEST(IntMath, HyperperiodRejectsNonPositivePeriods) {
  const std::vector<std::int64_t> negative = {10, -5};
  const std::vector<std::int64_t> zero = {10, 0};
  EXPECT_DEATH(hyperperiod(negative), "p > 0");
  EXPECT_DEATH(hyperperiod(zero), "p > 0");
}

TEST(IntMath, FloorCeilDivAtExtremes) {
  EXPECT_EQ(floor_div(kMin, 1), kMin);
  EXPECT_EQ(ceil_div(kMax, 1), kMax);
  EXPECT_EQ(floor_div(kMin + 1, -1), kMax);
  EXPECT_EQ(ceil_div(kMin + 1, -1), kMax);
  EXPECT_EQ(floor_div(kMax, -1), -kMax);
  EXPECT_EQ(ceil_div(kMax, -1), -kMax);
}

// int128 is the widening type every Rational product funnels through; pin
// that full 64x64 products survive the round trip.
TEST(IntMath, Int128HoldsFull64BitProducts) {
  const int128 p = static_cast<int128>(kMax) * kMax;
  EXPECT_EQ(p / kMax, static_cast<int128>(kMax));
  EXPECT_EQ(p % kMax, 0);
  const int128 q = static_cast<int128>(kMin) * kMin;
  EXPECT_GT(q, 0);  // (-2^63)^2 = 2^126 is positive and representable
  EXPECT_EQ(q / kMin, static_cast<int128>(kMin));
  EXPECT_EQ(static_cast<std::int64_t>(static_cast<int128>(kMin)), kMin);
  const uint128 u = static_cast<uint128>(std::uint64_t{0} - 1) *
                    (std::uint64_t{0} - 1);
  EXPECT_EQ(static_cast<std::uint64_t>(u), 1u);  // (2^64-1)^2 mod 2^64
}

TEST(IntMath, FloorCeilConsistency) {
  for (std::int64_t a = -20; a <= 20; ++a) {
    for (std::int64_t b = -5; b <= 5; ++b) {
      if (b == 0) continue;
      const std::int64_t f = floor_div(a, b);
      const std::int64_t c = ceil_div(a, b);
      const double q = static_cast<double>(a) / static_cast<double>(b);
      EXPECT_EQ(f, static_cast<std::int64_t>(std::floor(q)))
          << a << "/" << b;
      EXPECT_EQ(c, static_cast<std::int64_t>(std::ceil(q))) << a << "/" << b;
      EXPECT_TRUE(c == f || c == f + 1);
      if (a % b == 0) {
        EXPECT_EQ(f, c);
      }
    }
  }
}

}  // namespace
}  // namespace hetsched
