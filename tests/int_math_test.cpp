// Unit tests for overflow-checked integer helpers (util/int_math.h).
#include "util/int_math.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

namespace hetsched {
namespace {

constexpr std::int64_t kMax = std::numeric_limits<std::int64_t>::max();
constexpr std::int64_t kMin = std::numeric_limits<std::int64_t>::min();

TEST(IntMath, CheckedAddNormal) {
  EXPECT_EQ(checked_add(2, 3), 5);
  EXPECT_EQ(checked_add(-2, 3), 1);
}

TEST(IntMath, CheckedAddOverflow) {
  EXPECT_FALSE(checked_add(kMax, 1).has_value());
  EXPECT_FALSE(checked_add(kMin, -1).has_value());
  EXPECT_TRUE(checked_add(kMax, 0).has_value());
}

TEST(IntMath, CheckedSubOverflow) {
  EXPECT_EQ(checked_sub(5, 7), -2);
  EXPECT_FALSE(checked_sub(kMin, 1).has_value());
}

TEST(IntMath, CheckedMulNormalAndOverflow) {
  EXPECT_EQ(checked_mul(6, 7), 42);
  EXPECT_FALSE(checked_mul(kMax, 2).has_value());
  EXPECT_EQ(checked_mul(kMax, 1), kMax);
}

TEST(IntMath, Gcd) {
  EXPECT_EQ(gcd64(12, 18), 6);
  EXPECT_EQ(gcd64(0, 5), 5);
  EXPECT_EQ(gcd64(0, 0), 0);
  EXPECT_EQ(gcd64(-12, 18), 6);
}

TEST(IntMath, CheckedLcm) {
  EXPECT_EQ(checked_lcm(4, 6), 12);
  EXPECT_EQ(checked_lcm(0, 6), 0);
  EXPECT_FALSE(checked_lcm(kMax, kMax - 1).has_value());
}

TEST(IntMath, Hyperperiod) {
  const std::vector<std::int64_t> ps{4, 6, 10};
  EXPECT_EQ(hyperperiod(ps), 60);
}

TEST(IntMath, HyperperiodOverflowDetected) {
  // Pairwise-coprime large primes overflow the lcm.
  const std::vector<std::int64_t> ps{1000000007, 1000000009, 998244353};
  EXPECT_FALSE(hyperperiod(ps).has_value());
}

TEST(IntMath, HyperperiodSingleton) {
  const std::vector<std::int64_t> ps{7};
  EXPECT_EQ(hyperperiod(ps), 7);
}

TEST(IntMath, FloorDiv) {
  EXPECT_EQ(floor_div(7, 2), 3);
  EXPECT_EQ(floor_div(-7, 2), -4);
  EXPECT_EQ(floor_div(7, -2), -4);
  EXPECT_EQ(floor_div(-7, -2), 3);
  EXPECT_EQ(floor_div(6, 2), 3);
}

TEST(IntMath, CeilDiv) {
  EXPECT_EQ(ceil_div(7, 2), 4);
  EXPECT_EQ(ceil_div(-7, 2), -3);
  EXPECT_EQ(ceil_div(7, -2), -3);
  EXPECT_EQ(ceil_div(-7, -2), 4);
  EXPECT_EQ(ceil_div(6, 2), 3);
}

TEST(IntMath, FloorCeilConsistency) {
  for (std::int64_t a = -20; a <= 20; ++a) {
    for (std::int64_t b = -5; b <= 5; ++b) {
      if (b == 0) continue;
      const std::int64_t f = floor_div(a, b);
      const std::int64_t c = ceil_div(a, b);
      const double q = static_cast<double>(a) / static_cast<double>(b);
      EXPECT_EQ(f, static_cast<std::int64_t>(std::floor(q)))
          << a << "/" << b;
      EXPECT_EQ(c, static_cast<std::int64_t>(std::ceil(q))) << a << "/" << b;
      EXPECT_TRUE(c == f || c == f + 1);
      if (a % b == 0) {
        EXPECT_EQ(f, c);
      }
    }
  }
}

}  // namespace
}  // namespace hetsched
