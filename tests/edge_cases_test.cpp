// Cross-cutting edge-case tests gathered from review of the public API:
// rarely-hit branches that the per-module suites do not reach.
#include <gtest/gtest.h>

#include "hetsched/hetsched.h"

namespace hetsched {
namespace {

// -------------------------------------------------------------- io corners

TEST(Edge, IoDecimalWithoutWholePart) {
  const auto r = parse_instance_string("platform .5 2\n");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value->platform.speed_exact(0), Rational(1, 2));
}

TEST(Edge, IoOverlongDecimalRejected) {
  // More than 12 fractional digits would overflow the exact conversion.
  EXPECT_FALSE(parse_instance_string("platform 1.1234567890123\n").ok());
}

TEST(Edge, IoWhitespaceOnlyFile) {
  EXPECT_FALSE(parse_instance_string("\n   \n\t\n").ok());  // no platform
}

// ----------------------------------------------------- exact search corners

TEST(Edge, ExactPartitionWithHyperbolicAdmission) {
  // The skewed set the hyperbolic bound accepts on one machine but LL does
  // not: exact search must mirror the admission semantics.
  const TaskSet tasks({{6, 10}, {1, 10}, {1, 10}});
  const Platform one = Platform::from_speeds({1.0});
  EXPECT_EQ(
      exact_partition(tasks, one, AdmissionKind::kRmsHyperbolic).verdict,
      ExactVerdict::kFeasible);
  EXPECT_EQ(
      exact_partition(tasks, one, AdmissionKind::kRmsLiuLayland).verdict,
      ExactVerdict::kInfeasible);
}

TEST(Edge, ExactSingleMachineReducesToAdmission) {
  const TaskSet tasks({{1, 2}, {1, 4}, {1, 8}});
  const Platform one = Platform::from_speeds({1.0});
  EXPECT_EQ(
      exact_partition(tasks, one, AdmissionKind::kRmsResponseTime).verdict,
      ExactVerdict::kFeasible);  // the harmonic U=0.875 set
}

// ------------------------------------------------------------- sim corners

TEST(Edge, TraceGlyphsBeyondTen) {
  // 11 single-shot tasks: glyphs roll into letters ('a' = task 10).
  std::vector<Task> tasks;
  for (int i = 0; i < 11; ++i) tasks.push_back(Task{1, 20});
  SimLimits limits;
  limits.record_trace = true;
  const SimOutcome out =
      simulate_uniproc(tasks, Rational(1), SchedPolicy::kEdf, limits);
  ASSERT_TRUE(out.schedulable);
  const std::string text = render_trace(out, tasks.size());
  EXPECT_NE(text.find('a'), std::string::npos);
}

TEST(Edge, PartitionSimWithEmptyMachine) {
  const std::vector<std::vector<Task>> per_machine{{}, {{1, 2}}};
  const std::vector<Rational> speeds{Rational(1), Rational(1)};
  const PartitionSimOutcome out =
      simulate_partition(per_machine, speeds, SchedPolicy::kEdf);
  EXPECT_TRUE(out.schedulable);
  EXPECT_EQ(out.per_machine[0].jobs_released, 0);
}

// --------------------------------------------------------- stats corners

TEST(Edge, PercentileSingleElement) {
  const std::vector<double> xs{42.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 37.0), 42.0);
}

TEST(Edge, HistogramDegenerateMass) {
  Histogram h(0.0, 1.0, 4);
  for (int i = 0; i < 100; ++i) h.add(0.999999);
  EXPECT_EQ(h.bin_count(3), 100u);
}

// ------------------------------------------------------ partition corners

TEST(Edge, FirstFitSingleMachineEqualsAdmission) {
  // With one machine the partitioner is exactly the admission test.
  const TaskSet tasks({{1, 2}, {1, 3}});
  const Platform one = Platform::from_speeds({1.0});
  EXPECT_TRUE(first_fit_accepts(tasks, one, AdmissionKind::kEdf, 1.0));
  EXPECT_FALSE(
      first_fit_accepts(tasks, one, AdmissionKind::kRmsLiuLayland, 1.0));
  // 5/6 > 2(sqrt2-1) ~ 0.828 rejected by LL, accepted by exact RTA
  // (R2 = 1 + ceil(R/2) -> 3 <= 3).
  EXPECT_TRUE(
      first_fit_accepts(tasks, one, AdmissionKind::kRmsResponseTime, 1.0));
}

TEST(Edge, MinFeasibleAlphaHonorsTolerance) {
  const TaskSet tasks({{1, 1}, {1, 1}, {1, 1}});
  const Platform platform = Platform::from_speeds({1.0, 1.0});
  const auto coarse =
      min_feasible_alpha(tasks, platform, AdmissionKind::kEdf, 4.0, 0.5);
  const auto fine =
      min_feasible_alpha(tasks, platform, AdmissionKind::kEdf, 4.0, 1e-8);
  ASSERT_TRUE(coarse && fine);
  EXPECT_NEAR(*fine, 2.0, 1e-6);
  EXPECT_GE(*coarse, *fine - 1e-9);  // both upper-bracket the boundary
  EXPECT_LE(*coarse, *fine + 0.5);
}

// ------------------------------------------------------- migrating corners

TEST(Edge, BvnIdleSlicesAreDropped) {
  // A lightly loaded instance: the decomposition must not emit all-idle
  // slices (total length well below 1).
  const TaskSet tasks({{1, 10}});
  const Platform platform = Platform::from_speeds({1.0, 1.0});
  const auto sched = build_migrating_schedule(tasks, platform);
  ASSERT_TRUE(sched.has_value());
  for (const MigratingSlice& s : sched->slices) {
    bool any = false;
    for (const std::size_t t : s.assignment) {
      any |= (t != MigratingSlice::kIdle);
    }
    EXPECT_TRUE(any);
  }
}

// ----------------------------------------------------------- dbf corners

TEST(Edge, DbfCoprimePeriodsDoNotOverflow) {
  // The regression that motivated the long-double utilization path:
  // eight pairwise-coprime-ish periods whose lcm exceeds int64.
  std::vector<ConstrainedTask> tasks;
  for (const std::int64_t p :
       {1009, 1013, 1019, 1021, 1031, 1033, 1039, 1049}) {
    tasks.push_back(ConstrainedTask{p / 20, p / 2, p});
  }
  EXPECT_TRUE(edf_dbf_feasible_qpa(tasks, Rational(1)));
  EXPECT_TRUE(edf_dbf_feasible_exact(tasks, Rational(1)));
  EXPECT_TRUE(edf_dbf_feasible_approx(tasks, Rational(1)));
}

}  // namespace
}  // namespace hetsched
