// Differential oracle for the tiered admission tests (`ctest -L sim`):
// replay the E14 sweep's constrained-deadline streams through tiered
// controllers and hand every admitted machine set to the exact
// discrete-event simulator.  Every tier is *sufficient*, so the invariant
// is unconditional: an admitted set NEVER misses a deadline at the
// machine's augmented speed — for the EDF family under EDF, for the RTA
// kind under deadline-monotonic fixed priorities.  E14 periods divide
// 2520, so each per-machine simulation covers an exact hyperperiod.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "admit/admission_test.h"
#include "admit/sweep.h"
#include "core/constrained_task.h"
#include "core/platform.h"
#include "core/task.h"
#include "online/online_partitioner.h"
#include "sim/event_sim.h"

namespace hetsched {
namespace {

using admit::AdmitConfig;
using admit::TestKind;

void replay_and_simulate(TestKind kind) {
  const Platform platform = admit::e14_platform();
  AdmitConfig cfg;
  cfg.test = kind;
  const SchedPolicy policy =
      cfg.fixed_priority() ? SchedPolicy::kFixedPriorityRm : SchedPolicy::kEdf;

  std::size_t streams = 0, admitted_total = 0, simulated_machines = 0;
  for (const admit::E14Point& point : admit::e14_points(/*quick=*/true)) {
    OnlinePartitioner ctl(platform, AdmissionKind::kEdf, 1.0,
                          PartitionEngine::kAuto, cfg);
    for (const Task& t : point.tasks) {
      const AdmitDecision d = ctl.admit(t);
      if (d.admitted) ++admitted_total;
    }
    ++streams;

    for (std::size_t j = 0; j < platform.size(); ++j) {
      std::vector<ConstrainedTask> cts;
      for (const Task& t : ctl.machine_tasks(j)) {
        cts.push_back(admit::inflate(cfg, t));
      }
      if (cts.empty()) continue;
      ++simulated_machines;
      const SimOutcome out = simulate_uniproc_constrained(
          cts, platform.speed_exact(j), policy);
      EXPECT_TRUE(out.schedulable)
          << admit::to_string(kind) << " seed " << point.seed << " density "
          << point.target_density << " machine " << j << ": missed task "
          << (out.miss ? out.miss->task_index : 0u) << " at t="
          << (out.miss ? out.miss->deadline : 0);
      EXPECT_FALSE(out.horizon_exhausted)
          << admit::to_string(kind) << " seed " << point.seed;
    }
  }
  EXPECT_GT(streams, 0u);
  // The sweep must actually admit work, or the oracle proves nothing.
  EXPECT_GT(admitted_total, 0u) << admit::to_string(kind);
  EXPECT_GT(simulated_machines, 0u) << admit::to_string(kind);
}

TEST(AdmitSimDifferential, BoundAdmitsSimulateMissFree) {
  replay_and_simulate(TestKind::kBound);
}

TEST(AdmitSimDifferential, DbfApproxAdmitsSimulateMissFree) {
  replay_and_simulate(TestKind::kDbfApprox);
}

TEST(AdmitSimDifferential, QpaAdmitsSimulateMissFree) {
  replay_and_simulate(TestKind::kQpa);
}

TEST(AdmitSimDifferential, RtaAdmitsSimulateMissFree) {
  replay_and_simulate(TestKind::kRta);
}

TEST(AdmitSimDifferential, AutoAdmitsSimulateMissFree) {
  replay_and_simulate(TestKind::kAuto);
}

// The overhead model inflates before testing, so admitted sets stay
// miss-free even when the simulator charges the inflated cost.
TEST(AdmitSimDifferential, OverheadInflatedAdmitsSimulateMissFree) {
  const Platform platform = admit::e14_platform();
  AdmitConfig cfg;
  cfg.test = TestKind::kQpa;
  cfg.release_overhead = 1;
  cfg.preempt_overhead = 1;
  const auto points = admit::e14_points(/*quick=*/true);
  ASSERT_FALSE(points.empty());
  const admit::E14Point& point = points.front();

  OnlinePartitioner ctl(platform, AdmissionKind::kEdf, 1.0,
                        PartitionEngine::kAuto, cfg);
  for (const Task& t : point.tasks) ctl.admit(t);
  for (std::size_t j = 0; j < platform.size(); ++j) {
    std::vector<ConstrainedTask> cts;
    for (const Task& t : ctl.machine_tasks(j)) {
      cts.push_back(admit::inflate(cfg, t));
    }
    if (cts.empty()) continue;
    const SimOutcome out = simulate_uniproc_constrained(
        cts, platform.speed_exact(j), SchedPolicy::kEdf);
    EXPECT_TRUE(out.schedulable) << "machine " << j;
  }
}

}  // namespace
}  // namespace hetsched
