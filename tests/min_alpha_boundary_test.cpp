// Regression tests pinning min_feasible_alpha's documented contract: the
// result is "an alpha within tol of a boundary of the acceptance region" —
// accepted at alpha*, rejected at alpha* - 2 tol — even though first-fit
// acceptance is not provably monotone in alpha (see first_fit.h).
#include <gtest/gtest.h>

#include <vector>

#include "gen/platform_gen.h"
#include "gen/taskset_gen.h"
#include "partition/first_fit.h"
#include "util/rng.h"

namespace hetsched {
namespace {

TEST(MinFeasibleAlpha, ExactBoundaryOnCraftedInstance) {
  // One task of utilization 1.0 on a machine of speed 1/2: EDF admits iff
  // 1.0 <= alpha * 0.5, so the acceptance boundary is exactly alpha = 2.
  const TaskSet tasks({{1, 1}});
  const std::vector<Rational> speeds{Rational(1, 2)};
  const Platform platform = Platform::from_speeds_exact(speeds);
  const double tol = 1e-6;
  const auto alpha = min_feasible_alpha(tasks, platform, AdmissionKind::kEdf,
                                        32.0, tol);
  ASSERT_TRUE(alpha.has_value());
  EXPECT_NEAR(*alpha, 2.0, tol);
  EXPECT_TRUE(first_fit_accepts(tasks, platform, AdmissionKind::kEdf, *alpha));
  EXPECT_FALSE(
      first_fit_accepts(tasks, platform, AdmissionKind::kEdf, *alpha - 2 * tol));
}

TEST(MinFeasibleAlpha, BoundaryContractOnSampledInstance) {
  // A pinned sampled instance (seed below): whatever alpha* the bisection
  // returns must sit within tol of a boundary — accepted there, rejected
  // just below.  This is the non-monotonicity regression: if a future
  // engine change makes acceptance dip below alpha* the contract breaks
  // loudly here.
  Rng rng(0xB0DA);
  const Platform platform = geometric_platform(4, 1.7);
  TasksetSpec spec;
  spec.n = 24;
  spec.max_task_utilization = platform.max_speed();
  spec.total_utilization = 1.05 * platform.total_speed();
  spec.periods = PeriodSpec::log_uniform(10, 1000);
  const TaskSet tasks = generate_taskset(rng, spec);

  const double tol = 1e-6;
  for (const AdmissionKind kind :
       {AdmissionKind::kEdf, AdmissionKind::kRmsLiuLayland}) {
    const auto alpha =
        min_feasible_alpha(tasks, platform, kind, 32.0, tol);
    ASSERT_TRUE(alpha.has_value()) << to_string(kind);
    EXPECT_GT(*alpha, 1.0) << to_string(kind);  // overloaded: needs speedup
    EXPECT_TRUE(first_fit_accepts(tasks, platform, kind, *alpha))
        << to_string(kind);
    EXPECT_FALSE(first_fit_accepts(tasks, platform, kind, *alpha - 2 * tol))
        << to_string(kind);

    // The scratch-reusing overload bisects to the same value under both
    // engines.
    PartitionScratch scratch;
    for (const PartitionEngine engine :
         {PartitionEngine::kNaive, PartitionEngine::kSegmentTree}) {
      const auto fast = min_feasible_alpha(tasks, platform, kind, 32.0,
                                           scratch, engine, tol);
      ASSERT_TRUE(fast.has_value());
      EXPECT_EQ(*fast, *alpha) << to_string(kind);
    }
  }
}

}  // namespace
}  // namespace hetsched
