// Unit tests for the paper's first-fit partitioner (partition/first_fit.h).
#include "partition/first_fit.h"

#include <gtest/gtest.h>

#include "partition/analysis_constants.h"

namespace hetsched {
namespace {

TEST(FirstFit, PlacesSingleTaskOnSlowestSufficientMachine) {
  const TaskSet tasks({{1, 2}});  // w = 0.5
  const Platform platform = Platform::from_speeds({0.25, 1.0, 4.0});
  const PartitionResult res =
      first_fit_partition(tasks, platform, AdmissionKind::kEdf, 1.0);
  ASSERT_TRUE(res.feasible);
  // Machine 0 (speed .25) cannot take w = .5; machine 1 can.
  EXPECT_EQ(res.assignment[0], 1u);
}

TEST(FirstFit, ProcessesTasksInDecreasingUtilization) {
  // Big task (w=0.9) goes first and lands on the unit machine; the small
  // one (w=0.3) then also fits there under EDF (0.9+0.3 > 1 -> no), so it
  // spills to the fast machine? No: first fit tries machine 0 first:
  // 0.3 <= 1 - 0.9 fails, machine 1 (speed 2) takes it.
  const TaskSet tasks({{3, 10}, {9, 10}});
  const Platform platform = Platform::from_speeds({1.0, 2.0});
  const PartitionResult res =
      first_fit_partition(tasks, platform, AdmissionKind::kEdf, 1.0);
  ASSERT_TRUE(res.feasible);
  EXPECT_EQ(res.assignment[1], 0u);  // w = .9 placed first, on machine 0
  EXPECT_EQ(res.assignment[0], 1u);  // w = .3 overflows to machine 1
}

TEST(FirstFit, FailureReportsFailedTaskAndLoads) {
  const TaskSet tasks({{1, 1}, {1, 1}, {1, 1}});  // three w = 1 tasks
  const Platform platform = Platform::from_speeds({1.0, 1.0});
  const PartitionResult res =
      first_fit_partition(tasks, platform, AdmissionKind::kEdf, 1.0);
  EXPECT_FALSE(res.feasible);
  ASSERT_TRUE(res.failed_task.has_value());
  EXPECT_DOUBLE_EQ(res.failed_utilization, 1.0);
  // Two machines each already hold one unit task.
  EXPECT_DOUBLE_EQ(res.machine_utilization[0], 1.0);
  EXPECT_DOUBLE_EQ(res.machine_utilization[1], 1.0);
}

TEST(FirstFit, AlphaAugmentationEnablesPacking) {
  const TaskSet tasks({{1, 1}, {1, 1}, {1, 1}});
  const Platform platform = Platform::from_speeds({1.0, 1.0});
  EXPECT_FALSE(first_fit_accepts(tasks, platform, AdmissionKind::kEdf, 1.0));
  EXPECT_TRUE(first_fit_accepts(tasks, platform, AdmissionKind::kEdf, 2.0));
}

TEST(FirstFit, AssignmentRespectsAdmission) {
  const TaskSet tasks({{1, 2}, {1, 3}, {1, 4}, {1, 5}, {1, 6}});
  const Platform platform = Platform::from_speeds({0.5, 1.0, 1.0});
  const PartitionResult res =
      first_fit_partition(tasks, platform, AdmissionKind::kEdf, 1.0);
  ASSERT_TRUE(res.feasible);
  for (std::size_t j = 0; j < platform.size(); ++j) {
    EXPECT_LE(res.machine_utilization[j], platform.speed(j) + 1e-12);
  }
  // Every task assigned exactly once.
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    EXPECT_LT(res.assignment[i], platform.size());
  }
}

TEST(FirstFit, RmsAdmissionIsStricterThanEdf) {
  // Two w = 0.45 tasks on one unit machine: EDF packs (0.9 <= 1), RMS-LL
  // does not (0.9 > 0.828) and needs the second machine.
  const TaskSet tasks({{9, 20}, {9, 20}});
  const Platform one = Platform::from_speeds({1.0});
  EXPECT_TRUE(first_fit_accepts(tasks, one, AdmissionKind::kEdf, 1.0));
  EXPECT_FALSE(
      first_fit_accepts(tasks, one, AdmissionKind::kRmsLiuLayland, 1.0));
  const Platform two = Platform::from_speeds({1.0, 1.0});
  EXPECT_TRUE(
      first_fit_accepts(tasks, two, AdmissionKind::kRmsLiuLayland, 1.0));
}

TEST(FirstFit, RtaAdmissionAcceptsHarmonicOverload) {
  // Harmonic set with U = 1.0 on one machine: RTA packs it, LL cannot.
  const TaskSet tasks({{1, 2}, {1, 4}, {2, 8}});
  const Platform one = Platform::from_speeds({1.0});
  EXPECT_TRUE(
      first_fit_accepts(tasks, one, AdmissionKind::kRmsResponseTime, 1.0));
  EXPECT_FALSE(
      first_fit_accepts(tasks, one, AdmissionKind::kRmsLiuLayland, 1.0));
}

TEST(FirstFit, EmptyTaskSetIsFeasible) {
  const TaskSet tasks;
  const Platform platform = Platform::from_speeds({1.0});
  const PartitionResult res =
      first_fit_partition(tasks, platform, AdmissionKind::kEdf, 1.0);
  EXPECT_TRUE(res.feasible);
}

TEST(FirstFit, TaskLargerThanEveryMachineFails) {
  const TaskSet tasks({{3, 1}});  // w = 3
  const Platform platform = Platform::from_speeds({1.0, 2.0});
  const PartitionResult res =
      first_fit_partition(tasks, platform, AdmissionKind::kEdf, 1.0);
  EXPECT_FALSE(res.feasible);
  EXPECT_EQ(res.failed_task, 0u);
}

TEST(FirstFit, ToStringBothBranches) {
  const TaskSet tasks({{1, 2}});
  const Platform platform = Platform::from_speeds({1.0});
  const auto ok = first_fit_partition(tasks, platform, AdmissionKind::kEdf, 1.0);
  EXPECT_NE(ok.to_string().find("FEASIBLE"), std::string::npos);
  const TaskSet big({{2, 1}});
  const auto bad =
      first_fit_partition(big, platform, AdmissionKind::kEdf, 1.0);
  EXPECT_NE(bad.to_string().find("INFEASIBLE"), std::string::npos);
}

TEST(MinFeasibleAlpha, ReturnsOneWhenAlreadyFeasible) {
  const TaskSet tasks({{1, 2}});
  const Platform platform = Platform::from_speeds({1.0});
  const auto alpha =
      min_feasible_alpha(tasks, platform, AdmissionKind::kEdf, 4.0);
  ASSERT_TRUE(alpha.has_value());
  EXPECT_DOUBLE_EQ(*alpha, 1.0);
}

TEST(MinFeasibleAlpha, FindsExactBoundary) {
  // Three unit tasks on two unit machines: first-fit EDF accepts iff two
  // tasks share one machine, i.e. alpha >= 2.
  const TaskSet tasks({{1, 1}, {1, 1}, {1, 1}});
  const Platform platform = Platform::from_speeds({1.0, 1.0});
  const auto alpha =
      min_feasible_alpha(tasks, platform, AdmissionKind::kEdf, 4.0, 1e-9);
  ASSERT_TRUE(alpha.has_value());
  EXPECT_NEAR(*alpha, 2.0, 1e-7);
}

TEST(MinFeasibleAlpha, NulloptWhenBracketTooSmall) {
  const TaskSet tasks({{10, 1}});  // w = 10 on a unit machine
  const Platform platform = Platform::from_speeds({1.0});
  EXPECT_FALSE(
      min_feasible_alpha(tasks, platform, AdmissionKind::kEdf, 4.0).has_value());
}

TEST(FirstFit, PaperAlphasAcceptFeasibleWorkloads) {
  // A workload a partitioned scheduler can place exactly must be accepted
  // at the Theorem I.1 augmentation.
  const TaskSet tasks({{1, 1}, {1, 2}, {1, 2}});  // w = 1, .5, .5
  const Platform platform = Platform::from_speeds({1.0, 1.0});
  EXPECT_TRUE(first_fit_accepts(tasks, platform, AdmissionKind::kEdf,
                                EdfConstants::kAlphaPartitioned));
}

}  // namespace
}  // namespace hetsched
