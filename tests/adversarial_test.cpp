// Tests for the adversarial hill-climbing search
// (experiments/adversarial.h).
#include "experiments/adversarial.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "exact/exact_partition.h"
#include "lp/feasibility_lp.h"
#include "partition/analysis_constants.h"
#include "partition/first_fit.h"

namespace hetsched {
namespace {

AdversarialSearchSpec small_spec() {
  AdversarialSearchSpec spec;
  spec.platform = Platform::from_speeds({1.0, 1.5});
  spec.n = 6;
  spec.restarts = 3;
  spec.steps_per_restart = 40;
  spec.seed = 11;
  return spec;
}

TEST(Adversarial, FindsSomethingAboveOne) {
  // Separating instances (OPT feasible, first-fit not) are rare; identical
  // machines and a moderate budget reliably surface one across a few
  // seeds, even though any single short run can stall at 1.0.
  double best = 0;
  for (const std::uint64_t seed : {11u, 12u, 13u}) {
    AdversarialSearchSpec spec = small_spec();
    spec.platform = Platform::from_speeds({1.0, 1.0});
    spec.steps_per_restart = 120;
    spec.seed = seed;
    const AdversarialSearchResult res = adversarial_search(spec);
    EXPECT_GT(res.evaluations, 0u);
    EXPECT_EQ(res.best_tasks.size(), 6u);
    best = std::max(best, res.best_alpha);
  }
  EXPECT_GT(best, 1.0);
}

TEST(Adversarial, BestInstanceIsReproducible) {
  // The returned instance must actually be adversary-feasible and have the
  // reported alpha*.
  const AdversarialSearchSpec spec = small_spec();
  const AdversarialSearchResult res = adversarial_search(spec);
  ASSERT_FALSE(res.best_tasks.empty());
  EXPECT_EQ(
      exact_partition(res.best_tasks, spec.platform, AdmissionKind::kEdf)
          .verdict,
      ExactVerdict::kFeasible);
  const auto alpha = min_feasible_alpha(res.best_tasks, spec.platform,
                                        spec.kind, spec.alpha_search_hi);
  ASSERT_TRUE(alpha.has_value());
  EXPECT_NEAR(*alpha, res.best_alpha, 1e-9);
}

TEST(Adversarial, StaysWithinTheoremBound) {
  // Even under targeted search, Theorem I.1 caps alpha* at 2 for EDF
  // against the partitioned adversary.
  const AdversarialSearchResult res = adversarial_search(small_spec());
  EXPECT_LE(res.best_alpha, EdfConstants::kAlphaPartitioned + 1e-6);
}

TEST(Adversarial, LpAdversaryVariant) {
  AdversarialSearchSpec spec = small_spec();
  spec.adversary = AdversaryClass::kLp;
  spec.n = 10;
  const AdversarialSearchResult res = adversarial_search(spec);
  EXPECT_GT(res.evaluations, 0u);
  ASSERT_FALSE(res.best_tasks.empty());
  EXPECT_TRUE(lp_feasible_oracle(res.best_tasks, spec.platform));
  EXPECT_LE(res.best_alpha, EdfConstants::kAlphaLp + 1e-6);
}

TEST(Adversarial, DeterministicPerSeed) {
  const AdversarialSearchResult a = adversarial_search(small_spec());
  const AdversarialSearchResult b = adversarial_search(small_spec());
  EXPECT_DOUBLE_EQ(a.best_alpha, b.best_alpha);
  EXPECT_EQ(a.evaluations, b.evaluations);
}

TEST(Adversarial, SearchBeatsOrMatchesRandomStartBaseline) {
  // The climb should find at least as large an alpha* as its own random
  // starting points: improvements counter is the direct evidence the
  // mutations matter on this platform.
  AdversarialSearchSpec spec = small_spec();
  spec.restarts = 6;
  spec.steps_per_restart = 80;
  const AdversarialSearchResult res = adversarial_search(spec);
  EXPECT_GT(res.improvements, 0u);
}

}  // namespace
}  // namespace hetsched
