// Unit tests for the partition engine plumbing (partition/engine.h):
// SlackTree structure, engine name parsing, and kAuto resolution.
#include "partition/engine.h"

#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "partition/first_fit.h"

namespace hetsched {
namespace {

TEST(SlackTree, EmptyTreeFindsNothing) {
  SlackTree tree;
  tree.build({});
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_EQ(tree.find_first_at_least(0.0), SlackTree::npos);
}

TEST(SlackTree, SingleLeaf) {
  SlackTree tree;
  const std::vector<double> slack = {0.5};
  tree.build(slack);
  EXPECT_EQ(tree.find_first_at_least(0.4), 0u);
  EXPECT_EQ(tree.find_first_at_least(0.5), 0u);
  EXPECT_EQ(tree.find_first_at_least(0.6), SlackTree::npos);
}

TEST(SlackTree, FindsLeftmostNotLargest) {
  SlackTree tree;
  // Machine 2 has more slack, but first fit wants the leftmost admitting
  // machine, which is machine 0.
  const std::vector<double> slack = {0.5, 0.1, 0.9};
  tree.build(slack);
  EXPECT_EQ(tree.find_first_at_least(0.3), 0u);
  EXPECT_EQ(tree.find_first_at_least(0.6), 2u);
  EXPECT_EQ(tree.find_first_at_least(0.95), SlackTree::npos);
}

TEST(SlackTree, NonPowerOfTwoSizePaddingNeverMatches) {
  SlackTree tree;
  const std::vector<double> slack = {0.1, 0.2, 0.3, 0.4, 0.5};  // 5 leaves
  tree.build(slack);
  EXPECT_EQ(tree.size(), 5u);
  // A query of -inf-adjacent weight must not land in the padding leaves.
  EXPECT_EQ(tree.find_first_at_least(0.45), 4u);
  EXPECT_EQ(tree.find_first_at_least(0.55), SlackTree::npos);
  // Even w = -inf (never happens in practice) resolves to a real machine.
  EXPECT_EQ(tree.find_first_at_least(-std::numeric_limits<double>::infinity()),
            0u);
}

TEST(SlackTree, UpdatePropagatesToRoot) {
  SlackTree tree;
  const std::vector<double> slack = {0.5, 0.5, 0.5, 0.5};
  tree.build(slack);
  tree.update(0, 0.1);
  tree.update(1, 0.2);
  EXPECT_EQ(tree.find_first_at_least(0.3), 2u);
  tree.update(2, 0.0);
  tree.update(3, 0.0);
  EXPECT_EQ(tree.find_first_at_least(0.3), SlackTree::npos);
  EXPECT_EQ(tree.find_first_at_least(0.05), 0u);
  EXPECT_DOUBLE_EQ(tree.slack_at(1), 0.2);
}

TEST(SlackTree, RebuildReusesStorage) {
  SlackTree tree;
  const std::vector<double> big(64, 1.0);
  tree.build(big);
  EXPECT_EQ(tree.size(), 64u);
  const std::vector<double> small = {0.25, 0.75};
  tree.build(small);
  EXPECT_EQ(tree.size(), 2u);
  EXPECT_EQ(tree.find_first_at_least(0.5), 1u);
  EXPECT_EQ(tree.find_first_at_least(0.8), SlackTree::npos);
}

TEST(EngineNames, RoundTrip) {
  EXPECT_EQ(engine_from_name("auto"), PartitionEngine::kAuto);
  EXPECT_EQ(engine_from_name("naive"), PartitionEngine::kNaive);
  EXPECT_EQ(engine_from_name("tree"), PartitionEngine::kSegmentTree);
  EXPECT_EQ(engine_from_name("segment-tree"), PartitionEngine::kSegmentTree);
  EXPECT_EQ(engine_from_name("bogus"), std::nullopt);
  EXPECT_EQ(engine_from_name(""), std::nullopt);
}

TEST(EngineResolution, AutoPicksTreeForSlackForms) {
  for (const AdmissionKind kind :
       {AdmissionKind::kEdf, AdmissionKind::kRmsLiuLayland,
        AdmissionKind::kRmsHyperbolic}) {
    EXPECT_EQ(resolve_engine(PartitionEngine::kAuto, kind),
              PartitionEngine::kSegmentTree);
    EXPECT_EQ(resolve_engine(PartitionEngine::kNaive, kind),
              PartitionEngine::kNaive);
    EXPECT_EQ(resolve_engine(PartitionEngine::kSegmentTree, kind),
              PartitionEngine::kSegmentTree);
  }
}

TEST(EngineResolution, ResponseTimeAlwaysFallsBackToNaive) {
  for (const PartitionEngine e :
       {PartitionEngine::kAuto, PartitionEngine::kNaive,
        PartitionEngine::kSegmentTree}) {
    EXPECT_EQ(resolve_engine(e, AdmissionKind::kRmsResponseTime),
              PartitionEngine::kNaive);
  }
}

TEST(PartitionResultToString, InfeasibleWithoutFailedTaskPrintsNone) {
  // A default-constructed infeasible result has no failing task on record;
  // it must not masquerade as "task 0 failed".
  PartitionResult res;
  const std::string s = res.to_string();
  EXPECT_NE(s.find("failed_task=none"), std::string::npos);
  EXPECT_EQ(s.find("failed_task=0"), std::string::npos);
}

}  // namespace
}  // namespace hetsched
