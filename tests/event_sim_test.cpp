// Unit tests for the exact discrete-event simulator (sim/event_sim.h).
#include "sim/event_sim.h"

#include <gtest/gtest.h>

#include <vector>

namespace hetsched {
namespace {

TEST(Sim, EmptyTaskSetSchedulable) {
  const std::vector<Task> tasks;
  const SimOutcome out = simulate_uniproc(tasks, Rational(1), SchedPolicy::kEdf);
  EXPECT_TRUE(out.schedulable);
  EXPECT_EQ(out.jobs_released, 0);
}

TEST(Sim, SingleTaskMeetsDeadline) {
  const std::vector<Task> tasks{{2, 5}};
  const SimOutcome out = simulate_uniproc(tasks, Rational(1), SchedPolicy::kEdf);
  EXPECT_TRUE(out.schedulable);
  EXPECT_EQ(out.horizon, 5);
  EXPECT_EQ(out.jobs_released, 1);
  EXPECT_EQ(out.jobs_completed, 1);
  EXPECT_EQ(out.busy_time, Rational(2));
}

TEST(Sim, OverloadedSingleTaskMisses) {
  const std::vector<Task> tasks{{6, 5}};
  const SimOutcome out = simulate_uniproc(tasks, Rational(1), SchedPolicy::kEdf);
  EXPECT_FALSE(out.schedulable);
  ASSERT_TRUE(out.miss.has_value());
  EXPECT_EQ(out.miss->task_index, 0u);
  EXPECT_EQ(out.miss->deadline, 5);
  EXPECT_EQ(out.miss->remaining, Rational(1));
}

TEST(Sim, SpeedScalingRescuesOverload) {
  const std::vector<Task> tasks{{6, 5}};
  const SimOutcome out =
      simulate_uniproc(tasks, Rational(6, 5), SchedPolicy::kEdf);
  EXPECT_TRUE(out.schedulable);
}

TEST(Sim, EdfFullUtilizationExactlySchedulable) {
  // U = 1/2 + 1/3 + 1/6 = 1: EDF schedules exactly at unit speed.
  const std::vector<Task> tasks{{1, 2}, {1, 3}, {1, 6}};
  const SimOutcome out = simulate_uniproc(tasks, Rational(1), SchedPolicy::kEdf);
  EXPECT_TRUE(out.schedulable);
  EXPECT_EQ(out.horizon, 6);
  // Full utilization: busy the whole hyperperiod.
  EXPECT_EQ(out.busy_time, Rational(6));
}

TEST(Sim, EdfJustOverUtilizationMisses) {
  // U = 1/2 + 1/3 + 1/4 = 13/12 > 1.
  const std::vector<Task> tasks{{1, 2}, {1, 3}, {1, 4}};
  const SimOutcome out = simulate_uniproc(tasks, Rational(1), SchedPolicy::kEdf);
  EXPECT_FALSE(out.schedulable);
}

TEST(Sim, RmSchedulesHarmonicFullUtilization) {
  const std::vector<Task> tasks{{1, 2}, {1, 4}, {2, 8}};  // U = 1, harmonic
  const SimOutcome out =
      simulate_uniproc(tasks, Rational(1), SchedPolicy::kFixedPriorityRm);
  EXPECT_TRUE(out.schedulable);
}

TEST(Sim, RmMissesWhereEdfSucceeds) {
  // (2,5),(4,7): U = 2/5 + 4/7 ~= 0.971 <= 1, so EDF schedules it.  Under
  // RM, tau2's response iterates 4 -> 6 -> 8 > 7: deadline miss.
  const std::vector<Task> tasks{{2, 5}, {4, 7}};
  EXPECT_TRUE(
      simulate_uniproc(tasks, Rational(1), SchedPolicy::kEdf).schedulable);
  EXPECT_FALSE(
      simulate_uniproc(tasks, Rational(1), SchedPolicy::kFixedPriorityRm)
          .schedulable);
}

TEST(Sim, FractionalSpeedExactBoundary) {
  // Task (1, 3) on speed exactly 1/3 finishes exactly at its deadline.
  const std::vector<Task> tasks{{1, 3}};
  EXPECT_TRUE(
      simulate_uniproc(tasks, Rational(1, 3), SchedPolicy::kEdf).schedulable);
  EXPECT_FALSE(simulate_uniproc(tasks, Rational(33, 100), SchedPolicy::kEdf)
                   .schedulable);
}

TEST(Sim, PreemptionCounted) {
  // tau1=(1,4), tau2=(9,12), U = 1: tau2 runs [1,4], is preempted by tau1's
  // release at t=4 (earlier deadline 8), resumes [5,8], is preempted again
  // at t=8 (equal deadlines 12, index tie-break), finishes [9,12].
  const std::vector<Task> tasks{{1, 4}, {9, 12}};
  const SimOutcome out = simulate_uniproc(tasks, Rational(1), SchedPolicy::kEdf);
  EXPECT_TRUE(out.schedulable);
  EXPECT_EQ(out.preemptions, 2);
}

TEST(Sim, JobsReleasedMatchesHyperperiodArithmetic) {
  const std::vector<Task> tasks{{1, 4}, {1, 6}};
  const SimOutcome out = simulate_uniproc(tasks, Rational(1), SchedPolicy::kEdf);
  EXPECT_EQ(out.horizon, 12);
  EXPECT_EQ(out.jobs_released, 12 / 4 + 12 / 6);
  EXPECT_EQ(out.jobs_completed, out.jobs_released);
}

TEST(Sim, HorizonOverrideRespected) {
  const std::vector<Task> tasks{{1, 4}};
  SimLimits limits;
  limits.horizon_override = 8;
  const SimOutcome out =
      simulate_uniproc(tasks, Rational(1), SchedPolicy::kEdf, limits);
  EXPECT_EQ(out.horizon, 8);
  EXPECT_EQ(out.jobs_released, 2);
}

TEST(Sim, MaxJobsCapFlagsExhaustion) {
  // Coprime large periods make the hyperperiod overflow; the job cap stops
  // the run and flags it.
  const std::vector<Task> tasks{{1, 1000000007}, {1, 998244353}};
  SimLimits limits;
  limits.max_jobs = 10;
  const SimOutcome out =
      simulate_uniproc(tasks, Rational(1), SchedPolicy::kEdf, limits);
  EXPECT_TRUE(out.schedulable);
  EXPECT_TRUE(out.horizon_exhausted);
}

TEST(Sim, PartitionWrapperAllMachinesPass) {
  const std::vector<std::vector<Task>> per_machine{
      {{1, 2}},          // U = 0.5 on speed 1
      {{3, 4}, {1, 8}},  // U = 0.875 on speed 1: EDF fine
  };
  const std::vector<Rational> speeds{Rational(1), Rational(1)};
  const PartitionSimOutcome out =
      simulate_partition(per_machine, speeds, SchedPolicy::kEdf);
  EXPECT_TRUE(out.schedulable);
  EXPECT_FALSE(out.failing_machine.has_value());
  EXPECT_EQ(out.per_machine.size(), 2u);
}

TEST(Sim, PartitionWrapperReportsFirstFailingMachine) {
  const std::vector<std::vector<Task>> per_machine{
      {{1, 2}},
      {{3, 4}, {1, 2}},  // U = 1.25 > 1: misses
  };
  const std::vector<Rational> speeds{Rational(1), Rational(1)};
  const PartitionSimOutcome out =
      simulate_partition(per_machine, speeds, SchedPolicy::kEdf);
  EXPECT_FALSE(out.schedulable);
  ASSERT_TRUE(out.failing_machine.has_value());
  EXPECT_EQ(*out.failing_machine, 1u);
}

TEST(Sim, PolicyToString) {
  EXPECT_EQ(to_string(SchedPolicy::kEdf), "EDF");
  EXPECT_EQ(to_string(SchedPolicy::kFixedPriorityRm), "RM");
}

}  // namespace
}  // namespace hetsched
