// Proves the ISSUE acceptance criterion: after warm-up, admit() performs no
// heap allocation for the slack-form admission kinds (and depart() stays
// clean too once the free list has grown).  This lives in its own test
// binary because it replaces global operator new — instrumenting every
// other suite with the counter would be noise.
//
// Methodology: admit a full wave (warm-up grows the slot arena, the
// per-machine resident lists, and the free list via the departures), depart
// everything, then admit the same wave again and assert the allocation
// counter did not move.  The second wave reuses freed slots LIFO and lands
// on the same machines (same canonical state), so no vector regrows.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include "online/online_partitioner.h"

namespace {

std::atomic<std::size_t> g_allocations{0};

void* counted_alloc(std::size_t size) {
  ++g_allocations;
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}

}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace hetsched {
namespace {

std::vector<Task> wave() {
  // Mixed utilizations so the wave spreads over several machines.
  std::vector<Task> tasks;
  for (int i = 0; i < 64; ++i) {
    tasks.push_back(Task{1 + (i * 7) % 9, 10 + (i * 13) % 90});
  }
  return tasks;
}

class AllocTest : public ::testing::TestWithParam<AdmissionKind> {};

TEST_P(AllocTest, WarmAdmitAndDepartAreAllocationFree) {
  const AdmissionKind kind = GetParam();
  for (const PartitionEngine engine :
       {PartitionEngine::kNaive, PartitionEngine::kSegmentTree}) {
    OnlinePartitioner c(Platform::identical(8), kind, 2.0, engine);
    const std::vector<Task> tasks = wave();
    c.reserve(tasks.size());

    // Warm-up: admit everything, then depart everything (grows free list).
    std::vector<OnlineTaskId> ids;
    ids.reserve(tasks.size());
    for (const Task& t : tasks) {
      const AdmitDecision d = c.admit(t);
      ASSERT_TRUE(d.admitted);
      ids.push_back(d.id);
    }
    for (const OnlineTaskId id : ids) ASSERT_TRUE(c.depart(id));

    // Measured wave: same tasks, warm controller.
    std::size_t k = 0;
    const std::size_t before = g_allocations.load();
    for (const Task& t : tasks) {
      const AdmitDecision d = c.admit(t);
      if (d.admitted) ids[k++] = d.id;
    }
    const std::size_t admit_allocs = g_allocations.load() - before;
    EXPECT_EQ(admit_allocs, 0u)
        << "engine " << (engine == PartitionEngine::kNaive ? "naive" : "tree");

    // Warm departs are allocation-free as well (free list has capacity).
    const std::size_t before_depart = g_allocations.load();
    for (std::size_t i = 0; i < k; ++i) ASSERT_TRUE(c.depart(ids[i]));
    EXPECT_EQ(g_allocations.load() - before_depart, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(SlackFormKinds, AllocTest,
                         ::testing::Values(AdmissionKind::kEdf,
                                           AdmissionKind::kRmsLiuLayland,
                                           AdmissionKind::kRmsHyperbolic));

TEST(AllocCounter, CountsAtAll) {
  // Sanity-check the instrumentation itself: a vector growth must count.
  const std::size_t before = g_allocations.load();
  std::vector<int>* v = new std::vector<int>(100);
  delete v;
  EXPECT_GT(g_allocations.load(), before);
}

}  // namespace
}  // namespace hetsched
