// Tests for the churn trace generator: determinism, distribution bounds,
// event ordering, and arrival/departure pairing.
#include <gtest/gtest.h>

#include <map>

#include "gen/churn_gen.h"

namespace hetsched {
namespace {

TEST(BoundedPareto, SamplesStayInRange) {
  Rng rng(1);
  for (int i = 0; i < 2000; ++i) {
    const double x = bounded_pareto(rng, 1.5, 4.0, 4096.0);
    EXPECT_GE(x, 4.0);
    EXPECT_LE(x, 4096.0);
  }
}

TEST(BoundedPareto, EmpiricalMeanNearFormula) {
  const ChurnSpec spec;  // shape 1.5 on [4, 4096]
  Rng rng(2);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    sum += bounded_pareto(rng, spec.lifetime_shape, spec.lifetime_min,
                          spec.lifetime_max);
  }
  const double mean = sum / n;
  // Heavy-tailed, so allow a generous band around the analytic mean.
  EXPECT_NEAR(mean, spec.mean_lifetime(), 0.15 * spec.mean_lifetime());
}

TEST(ChurnSpec, OfferedUtilizationFollowsLittlesLaw) {
  ChurnSpec spec;
  spec.arrival_rate = 2.0;
  EXPECT_DOUBLE_EQ(spec.offered_utilization(),
                   2.0 * spec.mean_lifetime() * spec.mean_utilization());
  EXPECT_GT(spec.mean_utilization(), spec.util_lo);
  EXPECT_LT(spec.mean_utilization(), spec.util_hi);
}

TEST(GenerateChurnTrace, DeterministicFromSeed) {
  ChurnSpec spec;
  spec.arrivals = 128;
  Rng a(42), b(42);
  const ChurnTrace ta = generate_churn_trace(a, spec);
  const ChurnTrace tb = generate_churn_trace(b, spec);
  ASSERT_EQ(ta.events.size(), tb.events.size());
  for (std::size_t i = 0; i < ta.events.size(); ++i) {
    EXPECT_EQ(ta.events[i].kind, tb.events[i].kind);
    EXPECT_EQ(ta.events[i].time, tb.events[i].time);  // bitwise
    EXPECT_EQ(ta.events[i].task, tb.events[i].task);
    EXPECT_EQ(ta.events[i].params, tb.events[i].params);
  }
}

TEST(GenerateChurnTrace, EventsOrderedAndPaired) {
  ChurnSpec spec;
  spec.arrivals = 200;
  Rng rng(7);
  const ChurnTrace trace = generate_churn_trace(rng, spec);
  EXPECT_EQ(trace.arrivals, 200u);
  EXPECT_EQ(trace.events.size(), 400u);

  std::map<std::uint64_t, double> arrive_time;
  std::map<std::uint64_t, double> depart_time;
  double last = -1.0;
  for (const ChurnEvent& ev : trace.events) {
    EXPECT_GE(ev.time, last);
    last = ev.time;
    if (ev.kind == ChurnEvent::Kind::kArrival) {
      EXPECT_TRUE(arrive_time.emplace(ev.task, ev.time).second)
          << "task " << ev.task << " arrives twice";
      EXPECT_TRUE(ev.params.valid());
      // Realized like realize_taskset: c in [1, 4p].
      EXPECT_GE(ev.params.exec, 1);
      EXPECT_LE(ev.params.exec, 4 * ev.params.period);
    } else {
      EXPECT_TRUE(depart_time.emplace(ev.task, ev.time).second)
          << "task " << ev.task << " departs twice";
    }
  }
  ASSERT_EQ(arrive_time.size(), 200u);
  ASSERT_EQ(depart_time.size(), 200u);
  for (const auto& [task, at] : arrive_time) {
    const auto it = depart_time.find(task);
    ASSERT_NE(it, depart_time.end());
    EXPECT_GT(it->second, at) << "task " << task;
    // Lifetime respects the bounded-Pareto support (ulp slop: the trace
    // stores absolute times, so t + life - t can round).
    const double life = it->second - at;
    EXPECT_GE(life, ChurnSpec{}.lifetime_min - 1e-9);
    EXPECT_LE(life, ChurnSpec{}.lifetime_max + 1e-9);
  }
}

TEST(GenerateChurnTrace, ToStringOfKinds) {
  EXPECT_EQ(to_string(ChurnEvent::Kind::kArrival), "arrive");
  EXPECT_EQ(to_string(ChurnEvent::Kind::kDeparture), "depart");
}

}  // namespace
}  // namespace hetsched
