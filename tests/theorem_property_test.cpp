// Property tests for the paper's four theorems.
//
// Each theorem says: if the adversary can schedule the instance at the
// original speeds, the first-fit test accepts at augmentation alpha.  We
// sample random instances, filter for adversary-feasibility with the exact
// deciders, and assert acceptance at the theorem's alpha.  A single failure
// would be a counterexample to the paper.
#include <gtest/gtest.h>

#include "exact/exact_partition.h"
#include "gen/platform_gen.h"
#include "gen/taskset_gen.h"
#include "lp/feasibility_lp.h"
#include "partition/analysis_constants.h"
#include "partition/first_fit.h"
#include "util/rng.h"

namespace hetsched {
namespace {

struct Instance {
  TaskSet tasks;
  Platform platform;
};

// Random heterogeneous instance with load concentrated near the feasibility
// boundary, where the theorems actually bite.
Instance random_instance(Rng& rng, std::size_t n, std::size_t m) {
  Instance inst;
  const double ratio = rng.uniform(1.0, 2.0);
  inst.platform = geometric_platform(m, ratio);
  TasksetSpec spec;
  spec.n = n;
  // Cap tasks at the fastest machine (denser tasks are trivially
  // infeasible); clamp the total so UUniFast-Discard can actually sample it
  // (acceptance collapses above ~40% of n * cap).
  spec.max_task_utilization = inst.platform.max_speed();
  spec.total_utilization =
      std::min(rng.uniform(0.3, 1.05) * inst.platform.total_speed(),
               0.35 * static_cast<double>(n) * spec.max_task_utilization);
  spec.periods = PeriodSpec::uniform(20, 2000);
  inst.tasks = generate_taskset(rng, spec);
  return inst;
}

class TheoremTest : public ::testing::TestWithParam<std::uint64_t> {};

// Theorem I.3: LP feasible => FF-EDF accepts at alpha = 2.98.
TEST_P(TheoremTest, I3_EdfVsLpAdversary) {
  Rng rng(GetParam());
  int feasible_seen = 0;
  for (int iter = 0; iter < 150; ++iter) {
    const Instance inst = random_instance(rng, 24, 6);
    if (!lp_feasible_oracle(inst.tasks, inst.platform)) continue;
    ++feasible_seen;
    EXPECT_TRUE(first_fit_accepts(inst.tasks, inst.platform,
                                  AdmissionKind::kEdf, EdfConstants::kAlphaLp))
        << inst.tasks.to_string() << " on " << inst.platform.to_string();
  }
  EXPECT_GT(feasible_seen, 20);  // the filter must not be vacuous
}

// Theorem I.4: LP feasible => FF-RMS accepts at alpha = 3.34.
TEST_P(TheoremTest, I4_RmsVsLpAdversary) {
  Rng rng(GetParam() ^ 0xABCDEF);
  int feasible_seen = 0;
  for (int iter = 0; iter < 150; ++iter) {
    const Instance inst = random_instance(rng, 24, 6);
    if (!lp_feasible_oracle(inst.tasks, inst.platform)) continue;
    ++feasible_seen;
    EXPECT_TRUE(first_fit_accepts(inst.tasks, inst.platform,
                                  AdmissionKind::kRmsLiuLayland,
                                  RmsConstants::kAlphaLp))
        << inst.tasks.to_string() << " on " << inst.platform.to_string();
  }
  EXPECT_GT(feasible_seen, 20);
}

// Theorem I.1: partitioned-EDF feasible => FF-EDF accepts at alpha = 2.
TEST_P(TheoremTest, I1_EdfVsPartitionedAdversary) {
  Rng rng(GetParam() ^ 0x1111);
  int feasible_seen = 0;
  for (int iter = 0; iter < 60; ++iter) {
    const Instance inst = random_instance(rng, 10, 3);
    const ExactResult ex =
        exact_partition(inst.tasks, inst.platform, AdmissionKind::kEdf);
    if (ex.verdict != ExactVerdict::kFeasible) continue;
    ++feasible_seen;
    EXPECT_TRUE(first_fit_accepts(inst.tasks, inst.platform,
                                  AdmissionKind::kEdf,
                                  EdfConstants::kAlphaPartitioned))
        << inst.tasks.to_string() << " on " << inst.platform.to_string();
  }
  EXPECT_GT(feasible_seen, 5);
}

// Theorem I.2: any partitioned schedule exists (strongest per-machine
// scheduler is EDF) => FF-RMS accepts at alpha = 1/(sqrt2 - 1).
TEST_P(TheoremTest, I2_RmsVsPartitionedAdversary) {
  Rng rng(GetParam() ^ 0x2222);
  int feasible_seen = 0;
  for (int iter = 0; iter < 60; ++iter) {
    const Instance inst = random_instance(rng, 10, 3);
    const ExactResult ex =
        exact_partition(inst.tasks, inst.platform, AdmissionKind::kEdf);
    if (ex.verdict != ExactVerdict::kFeasible) continue;
    ++feasible_seen;
    EXPECT_TRUE(first_fit_accepts(inst.tasks, inst.platform,
                                  AdmissionKind::kRmsLiuLayland,
                                  RmsConstants::kAlphaPartitioned + 1e-9))
        << inst.tasks.to_string() << " on " << inst.platform.to_string();
  }
  EXPECT_GT(feasible_seen, 5);
}

// Prior art (Andersson–Tovar): LP feasible => FF accepts at 3.0 / 3.41.
// Implied by I.3/I.4 but checked independently as a regression guard.
TEST_P(TheoremTest, PriorArtCertificatesStillHold) {
  Rng rng(GetParam() ^ 0x3333);
  for (int iter = 0; iter < 80; ++iter) {
    const Instance inst = random_instance(rng, 16, 4);
    if (!lp_feasible_oracle(inst.tasks, inst.platform)) continue;
    EXPECT_TRUE(first_fit_accepts(inst.tasks, inst.platform,
                                  AdmissionKind::kEdf, 3.0));
    EXPECT_TRUE(first_fit_accepts(inst.tasks, inst.platform,
                                  AdmissionKind::kRmsLiuLayland, 3.41));
  }
}

// Observed (not proven) regularity the bisection in min_feasible_alpha
// relies on: first-fit acceptance is monotone in alpha.  Documented in
// first_fit.h; this probe is our evidence base.
TEST_P(TheoremTest, AcceptanceMonotoneInAlphaObserved) {
  Rng rng(GetParam() ^ 0x4444);
  for (int iter = 0; iter < 40; ++iter) {
    const Instance inst = random_instance(rng, 16, 4);
    for (const AdmissionKind kind :
         {AdmissionKind::kEdf, AdmissionKind::kRmsLiuLayland}) {
      bool prev = false;
      for (const double alpha : {1.0, 1.3, 1.7, 2.0, 2.5, 3.0, 4.0}) {
        const bool cur = first_fit_accepts(inst.tasks, inst.platform, kind,
                                           alpha);
        if (prev) {
          EXPECT_TRUE(cur) << "monotonicity anomaly at alpha=" << alpha
                           << " kind=" << to_string(kind) << " "
                           << inst.tasks.to_string();
        }
        prev = cur;
      }
    }
  }
}

// The RMS guarantee is weaker than EDF's (LL bound < utilization bound):
// whenever FF-RMS accepts, FF-EDF accepts at the same alpha.
TEST_P(TheoremTest, EdfDominatesRmsAtEqualAlpha) {
  Rng rng(GetParam() ^ 0x5555);
  for (int iter = 0; iter < 60; ++iter) {
    const Instance inst = random_instance(rng, 16, 4);
    for (const double alpha : {1.0, 2.0, 3.0}) {
      if (first_fit_accepts(inst.tasks, inst.platform,
                            AdmissionKind::kRmsLiuLayland, alpha)) {
        EXPECT_TRUE(first_fit_accepts(inst.tasks, inst.platform,
                                      AdmissionKind::kEdf, alpha));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TheoremTest,
                         ::testing::Values(11u, 22u, 33u, 44u, 55u));

}  // namespace
}  // namespace hetsched
