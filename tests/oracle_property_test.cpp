// Property tests cross-validating the two independent LP deciders and the
// closed-form augmentation bound (lp/feasibility_lp.h).
#include <gtest/gtest.h>

#include "gen/platform_gen.h"
#include "gen/taskset_gen.h"
#include "lp/feasibility_lp.h"
#include "util/rng.h"

namespace hetsched {
namespace {

// Caps a drawn total utilization to what UUniFast-Discard can sample under
// the per-task cap (its acceptance collapses above ~40% of n * max_util).
double clamp_reachable(double u, std::size_t n, double max_util) {
  return std::min(u, 0.35 * static_cast<double>(n) * max_util);
}

class OracleTest : public ::testing::TestWithParam<std::uint64_t> {};

// The simplex on the explicit LP and the combinatorial prefix condition
// must return identical verdicts on every instance.
TEST_P(OracleTest, SimplexAgreesWithCombinatorialOracle) {
  Rng rng(GetParam());
  for (int iter = 0; iter < 80; ++iter) {
    const std::size_t m = static_cast<std::size_t>(rng.uniform_int(1, 5));
    const std::size_t n = static_cast<std::size_t>(rng.uniform_int(1, 12));
    const Platform platform = uniform_platform(rng, m, 0.25, 4.0);
    TasksetSpec spec;
    spec.n = n;
    // Straddle the boundary: half the draws are over capacity.
    spec.max_task_utilization = std::min(4.0, platform.max_speed() * 1.2);
    spec.total_utilization =
        clamp_reachable(rng.uniform(0.5, 1.5) * platform.total_speed(), n,
                        spec.max_task_utilization);
    spec.periods = PeriodSpec::uniform(20, 500);
    const TaskSet tasks = generate_taskset(rng, spec);

    const bool oracle = lp_feasible_oracle(tasks, platform);
    const bool simplex = lp_feasible_simplex(tasks, platform);
    EXPECT_EQ(oracle, simplex)
        << tasks.to_string() << " on " << platform.to_string();
  }
}

// min_lp_augmentation is the exact boundary: the oracle rejects just below
// it and accepts just above it.
TEST_P(OracleTest, AugmentationIsTheFeasibilityBoundary) {
  Rng rng(GetParam() ^ 0x77);
  for (int iter = 0; iter < 60; ++iter) {
    const Platform platform = uniform_platform(rng, 4, 0.5, 3.0);
    TasksetSpec spec;
    spec.n = 10;
    spec.max_task_utilization = platform.max_speed() * 1.5;
    spec.total_utilization =
        clamp_reachable(rng.uniform(0.6, 1.4) * platform.total_speed(),
                        spec.n, spec.max_task_utilization);
    const TaskSet tasks = generate_taskset(rng, spec);

    const double alpha = min_lp_augmentation(tasks, platform);
    ASSERT_GT(alpha, 0);
    auto scaled = [&](double factor) {
      std::vector<Rational> speeds;
      for (std::size_t j = 0; j < platform.size(); ++j) {
        speeds.push_back(platform.speed_exact(j) *
                         rational_from_double(factor, 1 << 20));
      }
      return Platform::from_speeds_exact(speeds);
    };
    EXPECT_TRUE(lp_feasible_oracle(tasks, scaled(alpha * (1 + 1e-6))));
    if (alpha > 1e-6) {
      EXPECT_FALSE(lp_feasible_oracle(tasks, scaled(alpha * (1 - 1e-6))));
    }
  }
}

// Any u returned by the simplex satisfies the LP constraints.
TEST_P(OracleTest, SolutionsAreAlwaysValid) {
  Rng rng(GetParam() ^ 0x99);
  int solved = 0;
  for (int iter = 0; iter < 40; ++iter) {
    const Platform platform = uniform_platform(rng, 3, 0.5, 2.0);
    TasksetSpec spec;
    spec.n = 8;
    spec.max_task_utilization = platform.max_speed();
    spec.total_utilization =
        clamp_reachable(rng.uniform(0.4, 1.1) * platform.total_speed(),
                        spec.n, spec.max_task_utilization);
    const TaskSet tasks = generate_taskset(rng, spec);
    const auto u = lp_solution(tasks, platform);
    if (!u) continue;
    ++solved;
    const std::size_t n = tasks.size(), m = platform.size();
    for (std::size_t i = 0; i < n; ++i) {
      double row = 0, time = 0;
      for (std::size_t j = 0; j < m; ++j) {
        EXPECT_GE((*u)[i * m + j], -1e-7);
        row += (*u)[i * m + j];
        time += (*u)[i * m + j] / platform.speed(j);
      }
      EXPECT_NEAR(row, tasks[i].utilization(), 1e-6);
      EXPECT_LE(time, 1.0 + 1e-6);
    }
    for (std::size_t j = 0; j < m; ++j) {
      double load = 0;
      for (std::size_t i = 0; i < n; ++i) load += (*u)[i * m + j];
      EXPECT_LE(load, platform.speed(j) * (1.0 + 1e-6));
    }
  }
  EXPECT_GT(solved, 5);
}

// Feasibility is monotone in machine speed (adding speed never hurts).
TEST_P(OracleTest, FeasibilityMonotoneInSpeed) {
  Rng rng(GetParam() ^ 0xBB);
  for (int iter = 0; iter < 60; ++iter) {
    const Platform platform = uniform_platform(rng, 4, 0.5, 2.0);
    TasksetSpec spec;
    spec.n = 8;
    spec.max_task_utilization = platform.max_speed() * 1.2;
    spec.total_utilization =
        clamp_reachable(rng.uniform(0.5, 1.2) * platform.total_speed(),
                        spec.n, spec.max_task_utilization);
    const TaskSet tasks = generate_taskset(rng, spec);
    if (lp_feasible_oracle(tasks, platform)) {
      EXPECT_TRUE(lp_feasible_oracle(tasks, scale_platform(platform, 1.5)));
    } else {
      EXPECT_FALSE(lp_feasible_oracle(tasks, scale_platform(platform, 0.75)));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OracleTest,
                         ::testing::Values(101u, 202u, 303u, 404u, 505u));

}  // namespace
}  // namespace hetsched
