// Cross-module integration tests: partitioner <-> simulator <-> LP <-> exact
// search on curated end-to-end scenarios.
#include <gtest/gtest.h>

#include "hetsched/hetsched.h"

namespace hetsched {
namespace {

// A small big.LITTLE platform and a mixed workload, walked through the whole
// pipeline: generation -> feasibility test -> assignment -> exact replay.
TEST(Integration, BigLittleEndToEndEdf) {
  const Platform platform = big_little_platform(4, 2, 1.0, 3.0);
  const TaskSet tasks({
      {5, 10},    // 0.5
      {9, 10},    // 0.9
      {12, 10},   // 1.2: needs a big core
      {3, 10},    // 0.3
      {20, 10},   // 2.0: needs a big core
      {2, 10},    // 0.2
  });
  const PartitionResult res =
      first_fit_partition(tasks, platform, AdmissionKind::kEdf, 1.0);
  ASSERT_TRUE(res.feasible);

  // Dense tasks must sit on big cores (speed 3).
  EXPECT_GE(platform.speed(res.assignment[2]), 1.2);
  EXPECT_GE(platform.speed(res.assignment[4]), 2.0);

  // Replay the exact schedule on every machine: zero misses.
  std::vector<Rational> speeds;
  for (std::size_t j = 0; j < platform.size(); ++j) {
    speeds.push_back(platform.speed_exact(j));
  }
  const PartitionSimOutcome sim =
      simulate_partition(res.tasks_per_machine, speeds, SchedPolicy::kEdf);
  EXPECT_TRUE(sim.schedulable);
}

TEST(Integration, RmsPipelineWithAugmentation) {
  const Platform platform = Platform::from_speeds({1.0, 1.0});
  const TaskSet tasks({{4, 10}, {4, 10}, {4, 10}, {4, 10}});  // U = 1.6
  // At alpha = 1, RMS-LL cannot place four 0.4 tasks on two unit machines
  // (two per machine: 0.8 > 0.828? 0.8 <= 0.828 fits!).  So it is feasible.
  const PartitionResult res =
      first_fit_partition(tasks, platform, AdmissionKind::kRmsLiuLayland, 1.0);
  ASSERT_TRUE(res.feasible);
  std::vector<Rational> speeds{platform.speed_exact(0),
                               platform.speed_exact(1)};
  const PartitionSimOutcome sim = simulate_partition(
      res.tasks_per_machine, speeds, SchedPolicy::kFixedPriorityRm);
  EXPECT_TRUE(sim.schedulable);
}

TEST(Integration, FailureCertificateAgreesWithLp) {
  // An LP-infeasible instance must be rejected by first-fit at alpha = 2.98
  // ... contrapositive of Theorem I.3: if FF accepts at 2.98 the LP might
  // still be infeasible (the theorem only runs one way), but if the LP is
  // feasible FF must accept.  Here: LP feasible => FF accepts.
  const TaskSet tasks({{3, 5}, {3, 5}, {3, 5}});  // three w = 0.6
  const Platform platform = Platform::from_speeds({1.0, 1.0});
  ASSERT_TRUE(lp_feasible_oracle(tasks, platform));
  ASSERT_TRUE(lp_feasible_simplex(tasks, platform));
  EXPECT_TRUE(first_fit_accepts(tasks, platform, AdmissionKind::kEdf,
                                EdfConstants::kAlphaLp));
}

TEST(Integration, PartitionedAdversaryCertificate) {
  // Exact partition exists => FF-EDF accepts at alpha = 2 (Theorem I.1).
  const TaskSet tasks({{44, 100}, {42, 100}, {40, 100},
                       {38, 100}, {20, 100}, {16, 100}});
  const Platform platform = Platform::from_speeds({1.0, 1.0});
  ASSERT_EQ(exact_partition(tasks, platform, AdmissionKind::kEdf).verdict,
            ExactVerdict::kFeasible);
  EXPECT_FALSE(first_fit_accepts(tasks, platform, AdmissionKind::kEdf, 1.0));
  EXPECT_TRUE(first_fit_accepts(tasks, platform, AdmissionKind::kEdf,
                                EdfConstants::kAlphaPartitioned));
}

TEST(Integration, GeneratorFeedsWholePipeline) {
  Rng rng(2024);
  TasksetSpec tspec;
  tspec.n = 12;
  tspec.total_utilization = 3.0;
  tspec.periods = PeriodSpec::sim_friendly();
  const TaskSet tasks = generate_taskset(rng, tspec);
  const Platform platform = geometric_platform(6, 1.5);

  const bool lp_ok = lp_feasible_oracle(tasks, platform);
  EXPECT_EQ(lp_ok, lp_feasible_simplex(tasks, platform));

  const PartitionResult ff =
      first_fit_partition(tasks, platform, AdmissionKind::kEdf, 2.98);
  if (lp_ok) {
    ASSERT_TRUE(ff.feasible);  // Theorem I.3 contrapositive
    std::vector<Rational> speeds;
    const Rational alpha = rational_from_double(2.98);
    for (std::size_t j = 0; j < platform.size(); ++j) {
      speeds.push_back(platform.speed_exact(j) * alpha);
    }
    EXPECT_TRUE(simulate_partition(ff.tasks_per_machine, speeds,
                                   SchedPolicy::kEdf)
                    .schedulable);
  }
}

TEST(Integration, AugmentationSearchBracketsOracleValue) {
  // For a single machine and EDF, first-fit's minimal alpha equals total
  // utilization / speed, which is also the LP bound.
  const TaskSet tasks({{3, 2}, {1, 2}});  // U = 2.0
  const Platform platform = Platform::from_speeds({1.0});
  const auto alpha =
      min_feasible_alpha(tasks, platform, AdmissionKind::kEdf, 8.0, 1e-9);
  ASSERT_TRUE(alpha.has_value());
  EXPECT_NEAR(*alpha, 2.0, 1e-7);
  EXPECT_NEAR(min_lp_augmentation(tasks, platform), 2.0, 1e-12);
}

TEST(Integration, HeuristicGridAllRunnable) {
  Rng rng(5);
  TasksetSpec tspec;
  tspec.n = 10;
  tspec.total_utilization = 2.5;
  const TaskSet tasks = generate_taskset(rng, tspec);
  const Platform platform = Platform::from_speeds({0.5, 1.0, 1.5, 2.0});
  for (const TaskOrder to :
       {TaskOrder::kDecreasingUtilization, TaskOrder::kIncreasingUtilization,
        TaskOrder::kInputOrder, TaskOrder::kRandom}) {
    for (const MachineOrder mo :
         {MachineOrder::kIncreasingSpeed, MachineOrder::kDecreasingSpeed}) {
      for (const FitRule fr :
           {FitRule::kFirstFit, FitRule::kBestFit, FitRule::kWorstFit}) {
        HeuristicSpec spec{to, mo, fr};
        Rng order_rng(1);
        const PartitionResult res = heuristic_partition(
            tasks, platform, spec, AdmissionKind::kEdf, 2.0, &order_rng);
        if (res.feasible) {
          for (std::size_t j = 0; j < platform.size(); ++j) {
            EXPECT_LE(res.machine_utilization[j],
                      2.0 * platform.speed(j) + 1e-9)
                << spec.to_string();
          }
        }
      }
    }
  }
}

}  // namespace
}  // namespace hetsched
