// Unit tests for the paper's LP adversary (lp/feasibility_lp.h).
#include "lp/feasibility_lp.h"

#include <gtest/gtest.h>

namespace hetsched {
namespace {

TEST(FeasibilityLp, BuildShape) {
  const TaskSet tasks({{1, 2}, {1, 4}});
  const Platform platform = Platform::from_speeds({1.0, 2.0});
  const LinearProgram lp = build_feasibility_lp(tasks, platform);
  EXPECT_EQ(lp.num_vars(), 4u);          // n * m
  EXPECT_EQ(lp.num_constraints(), 6u);   // n eq + n le + m le
}

TEST(FeasibilityLp, TrivialSingleTaskFeasible) {
  const TaskSet tasks({{1, 2}});  // w = 0.5
  const Platform platform = Platform::from_speeds({1.0});
  EXPECT_TRUE(lp_feasible_simplex(tasks, platform));
  EXPECT_TRUE(lp_feasible_oracle(tasks, platform));
}

TEST(FeasibilityLp, OverloadedSingleMachineInfeasible) {
  const TaskSet tasks({{3, 2}});  // w = 1.5 on speed 1
  const Platform platform = Platform::from_speeds({1.0});
  EXPECT_FALSE(lp_feasible_simplex(tasks, platform));
  EXPECT_FALSE(lp_feasible_oracle(tasks, platform));
}

TEST(FeasibilityLp, DenseTaskNeedsFastMachine) {
  // w = 1.5 can split across two speed-1 machines in space, but constraint
  // (2) forbids it: 1.5 units of utilization at speed 1 exceeds one unit of
  // the task's own time.
  const TaskSet tasks({{3, 2}});
  const Platform two_slow = Platform::from_speeds({1.0, 1.0});
  EXPECT_FALSE(lp_feasible_oracle(tasks, two_slow));
  EXPECT_FALSE(lp_feasible_simplex(tasks, two_slow));
  const Platform one_fast = Platform::from_speeds({2.0});
  EXPECT_TRUE(lp_feasible_oracle(tasks, one_fast));
  EXPECT_TRUE(lp_feasible_simplex(tasks, one_fast));
}

TEST(FeasibilityLp, MigrationHelpsAcrossMachines) {
  // Three tasks of w = 0.6 on two unit machines: total 1.8 <= 2 and each
  // task fits one machine; migration (the LP) allows it, partitioning
  // would not (two tasks on one machine exceed 1).
  const TaskSet tasks({{3, 5}, {3, 5}, {3, 5}});
  const Platform platform = Platform::from_speeds({1.0, 1.0});
  EXPECT_TRUE(lp_feasible_oracle(tasks, platform));
  EXPECT_TRUE(lp_feasible_simplex(tasks, platform));
}

TEST(FeasibilityLp, TotalUtilizationBinds) {
  const TaskSet tasks({{1, 2}, {1, 2}, {1, 2}, {1, 2}, {1, 2}});  // U = 2.5
  const Platform platform = Platform::from_speeds({1.0, 1.0});    // S = 2
  EXPECT_FALSE(lp_feasible_oracle(tasks, platform));
  EXPECT_FALSE(lp_feasible_simplex(tasks, platform));
}

TEST(FeasibilityLp, PrefixConditionBindsBeyondTotals) {
  // Two dense tasks w = 1.8 + one tiny; platform speeds {2, 2, 0.2}.
  // Totals: U = 3.7 <= S = 4.2 and each task fits the fastest machine, but
  // the two largest tasks (3.6) exceed the two fastest machines (4.0)?
  // No: 3.6 <= 4 — make three dense tasks instead: 3 x 1.8 = 5.4 > 4.2
  // fails on totals... Use w = {1.9, 1.9} vs speeds {2, 0.5}: prefix-1
  // 1.9 <= 2 ok, prefix-2 3.8 > 2.5 -> infeasible though each fits alone.
  const TaskSet tasks({{19, 10}, {19, 10}});
  const Platform platform = Platform::from_speeds({2.0, 0.5});
  EXPECT_FALSE(lp_feasible_oracle(tasks, platform));
  EXPECT_FALSE(lp_feasible_simplex(tasks, platform));
}

TEST(FeasibilityLp, EmptyTaskSetFeasible) {
  const TaskSet tasks;
  const Platform platform = Platform::from_speeds({1.0});
  EXPECT_TRUE(lp_feasible_simplex(tasks, platform));
  EXPECT_TRUE(lp_feasible_oracle(tasks, platform));
}

TEST(FeasibilityLp, MoreTasksThanMachines) {
  // 4 tasks w = 0.5 on two unit machines: exactly packs.
  const TaskSet tasks({{1, 2}, {1, 2}, {1, 2}, {1, 2}});
  const Platform platform = Platform::from_speeds({1.0, 1.0});
  EXPECT_TRUE(lp_feasible_oracle(tasks, platform));
  EXPECT_TRUE(lp_feasible_simplex(tasks, platform));
}

TEST(FeasibilityLp, SolutionSatisfiesConstraints) {
  const TaskSet tasks({{3, 5}, {3, 5}, {3, 5}});
  const Platform platform = Platform::from_speeds({1.0, 1.0});
  const auto u = lp_solution(tasks, platform);
  ASSERT_TRUE(u.has_value());
  const std::size_t n = tasks.size(), m = platform.size();
  ASSERT_EQ(u->size(), n * m);
  for (std::size_t i = 0; i < n; ++i) {
    double row = 0, time = 0;
    for (std::size_t j = 0; j < m; ++j) {
      const double uij = (*u)[i * m + j];
      EXPECT_GE(uij, -1e-9);
      row += uij;
      time += uij / platform.speed(j);
    }
    EXPECT_NEAR(row, tasks[i].utilization(), 1e-6);
    EXPECT_LE(time, 1.0 + 1e-6);
  }
  for (std::size_t j = 0; j < m; ++j) {
    double load = 0;
    for (std::size_t i = 0; i < n; ++i) load += (*u)[i * m + j];
    EXPECT_LE(load / platform.speed(j), 1.0 + 1e-6);
  }
}

TEST(MinLpAugmentation, ExactValues) {
  // Single task w = 1.5 on unit machine: alpha* = 1.5.
  EXPECT_NEAR(min_lp_augmentation(TaskSet({{3, 2}}),
                                  Platform::from_speeds({1.0})),
              1.5, 1e-12);
  // Feasible instance: alpha* <= 1.
  EXPECT_LE(min_lp_augmentation(TaskSet({{1, 2}}),
                                Platform::from_speeds({1.0})),
            1.0);
}

TEST(MinLpAugmentation, MatchesOracleBoundary) {
  const TaskSet tasks({{19, 10}, {19, 10}});
  const Platform platform = Platform::from_speeds({2.0, 0.5});
  const double alpha = min_lp_augmentation(tasks, platform);
  EXPECT_NEAR(alpha, 3.8 / 2.5, 1e-12);
  // Scaling the platform by alpha must make the oracle accept.
  std::vector<Rational> speeds;
  for (std::size_t j = 0; j < platform.size(); ++j) {
    speeds.push_back(platform.speed_exact(j) *
                     rational_from_double(alpha, 1'000'000));
  }
  EXPECT_TRUE(lp_feasible_oracle(tasks, Platform::from_speeds_exact(speeds)));
}

TEST(MinLpAugmentation, EmptyTasksZero) {
  EXPECT_DOUBLE_EQ(
      min_lp_augmentation(TaskSet{}, Platform::from_speeds({1.0})), 0.0);
}

}  // namespace
}  // namespace hetsched
