// Randomized property test: the segment-tree engine is bit-identical to the
// naive machine scan, across every admission kind, accept and reject cases
// alike.  This is the contract that lets every experiment run on the fast
// path while the naive scan stays the auditable reference implementation of
// the paper's algorithm.
#include <gtest/gtest.h>

#include <vector>

#include "gen/platform_gen.h"
#include "gen/taskset_gen.h"
#include "partition/first_fit.h"
#include "util/rng.h"

namespace hetsched {
namespace {

// EXPECT with exact (bitwise) double equality: the engines must compute the
// very same values, not merely close ones.
void expect_identical(const PartitionResult& a, const PartitionResult& b) {
  ASSERT_EQ(a.feasible, b.feasible);
  EXPECT_EQ(a.kind, b.kind);
  EXPECT_EQ(a.alpha, b.alpha);
  ASSERT_EQ(a.assignment.size(), b.assignment.size());
  for (std::size_t i = 0; i < a.assignment.size(); ++i) {
    EXPECT_EQ(a.assignment[i], b.assignment[i]) << "task " << i;
  }
  ASSERT_EQ(a.machine_utilization.size(), b.machine_utilization.size());
  for (std::size_t j = 0; j < a.machine_utilization.size(); ++j) {
    EXPECT_EQ(a.machine_utilization[j], b.machine_utilization[j])
        << "machine " << j;
  }
  ASSERT_EQ(a.tasks_per_machine.size(), b.tasks_per_machine.size());
  for (std::size_t j = 0; j < a.tasks_per_machine.size(); ++j) {
    ASSERT_EQ(a.tasks_per_machine[j].size(), b.tasks_per_machine[j].size())
        << "machine " << j;
    for (std::size_t k = 0; k < a.tasks_per_machine[j].size(); ++k) {
      EXPECT_EQ(a.tasks_per_machine[j][k].exec, b.tasks_per_machine[j][k].exec);
      EXPECT_EQ(a.tasks_per_machine[j][k].period,
                b.tasks_per_machine[j][k].period);
    }
  }
  EXPECT_EQ(a.failed_task, b.failed_task);
  EXPECT_EQ(a.failed_utilization, b.failed_utilization);
}

Platform random_platform(Rng& rng) {
  const std::size_t m = static_cast<std::size_t>(rng.uniform_int(1, 12));
  switch (rng.uniform_int(0, 2)) {
    case 0:
      return Platform::identical(m);
    case 1:
      return geometric_platform(m, rng.uniform(1.0, 2.5));
    default:
      return big_little_platform((m + 1) / 2, m / 2 + 1, 1.0,
                                 rng.uniform(1.5, 4.0));
  }
}

TaskSet random_taskset(Rng& rng, const Platform& platform, bool bounded_periods) {
  TasksetSpec spec;
  spec.n = static_cast<std::size_t>(rng.uniform_int(1, 40));
  spec.max_task_utilization = platform.max_speed();
  // Normalized load 0.4..1.15: straddles the acceptance boundary so the
  // sample contains plenty of rejections (the branchier engine path).
  const double norm = rng.uniform(0.4, 1.15);
  spec.total_utilization =
      std::min(norm * platform.total_speed(),
               0.35 * static_cast<double>(spec.n) * spec.max_task_utilization);
  spec.periods = bounded_periods ? PeriodSpec::uniform(10, 200)
                                 : PeriodSpec::log_uniform(10, 1000);
  return generate_taskset(rng, spec);
}

TEST(EngineEquivalence, SlackFormKindsBitIdenticalOverRandomInstances) {
  const AdmissionKind kinds[] = {AdmissionKind::kEdf,
                                 AdmissionKind::kRmsLiuLayland,
                                 AdmissionKind::kRmsHyperbolic};
  const double alphas[] = {1.0, 1.3, 2.0, 2.98};
  Rng rng(0x5EED5EED);
  int rejects = 0;
  for (int iter = 0; iter < 300; ++iter) {
    const Platform platform = random_platform(rng);
    const TaskSet tasks = random_taskset(rng, platform, false);
    const AdmissionKind kind = kinds[iter % 3];
    const double alpha = alphas[iter % 4];

    const PartitionResult naive = first_fit_partition(
        tasks, platform, kind, alpha, PartitionEngine::kNaive);
    const PartitionResult tree = first_fit_partition(
        tasks, platform, kind, alpha, PartitionEngine::kSegmentTree);
    expect_identical(naive, tree);
    if (!naive.feasible) ++rejects;

    // The decision-only accept path must agree with both full partitions.
    PartitionScratch scratch;
    EXPECT_EQ(first_fit_accepts(tasks, platform, kind, alpha, scratch,
                                PartitionEngine::kSegmentTree),
              naive.feasible);
    EXPECT_EQ(first_fit_accepts(tasks, platform, kind, alpha, scratch,
                                PartitionEngine::kNaive),
              naive.feasible);
  }
  // The sample must actually exercise the reject path.
  EXPECT_GT(rejects, 30);
}

TEST(EngineEquivalence, ScratchReuseAcrossHeterogeneousCallsIsSafe) {
  // One scratch, many different (platform, kind, alpha) shapes in a row:
  // stale buffer contents from a previous call must never leak into the
  // next verdict.
  Rng rng(0xAB12);
  PartitionScratch scratch;
  for (int iter = 0; iter < 120; ++iter) {
    const Platform platform = random_platform(rng);
    const TaskSet tasks = random_taskset(rng, platform, false);
    const AdmissionKind kind = iter % 2 == 0 ? AdmissionKind::kEdf
                                             : AdmissionKind::kRmsHyperbolic;
    const double alpha = 1.0 + 0.5 * (iter % 3);
    const bool fresh =
        first_fit_accepts(tasks, platform, kind, alpha);  // own scratch
    const bool reused =
        first_fit_accepts(tasks, platform, kind, alpha, scratch);
    EXPECT_EQ(fresh, reused);
  }
}

TEST(EngineEquivalence, ResponseTimeKindMatchesThroughFallback) {
  // kRmsResponseTime has no slack form; requesting the tree engine must
  // transparently produce the naive engine's exact result.
  Rng rng(0x52A);
  for (int iter = 0; iter < 40; ++iter) {
    const Platform platform = random_platform(rng);
    const TaskSet tasks = random_taskset(rng, platform, true);
    const double alpha = iter % 2 == 0 ? 1.0 : 2.0;
    const PartitionResult naive =
        first_fit_partition(tasks, platform, AdmissionKind::kRmsResponseTime,
                            alpha, PartitionEngine::kNaive);
    const PartitionResult tree =
        first_fit_partition(tasks, platform, AdmissionKind::kRmsResponseTime,
                            alpha, PartitionEngine::kSegmentTree);
    expect_identical(naive, tree);
    PartitionScratch scratch;
    EXPECT_EQ(first_fit_accepts(tasks, platform,
                                AdmissionKind::kRmsResponseTime, alpha,
                                scratch),
              naive.feasible);
  }
}

TEST(EngineEquivalence, MinFeasibleAlphaAgreesAcrossEnginesAndScratch) {
  Rng rng(0xA1FA);
  PartitionScratch scratch;
  for (int iter = 0; iter < 60; ++iter) {
    const Platform platform = random_platform(rng);
    const TaskSet tasks = random_taskset(rng, platform, false);
    const AdmissionKind kind =
        iter % 2 == 0 ? AdmissionKind::kEdf : AdmissionKind::kRmsLiuLayland;
    const auto plain = min_feasible_alpha(tasks, platform, kind, 8.0);
    const auto via_naive = min_feasible_alpha(tasks, platform, kind, 8.0,
                                              scratch, PartitionEngine::kNaive);
    const auto via_tree = min_feasible_alpha(
        tasks, platform, kind, 8.0, scratch, PartitionEngine::kSegmentTree);
    ASSERT_EQ(plain.has_value(), via_tree.has_value());
    ASSERT_EQ(via_naive.has_value(), via_tree.has_value());
    if (plain) {
      EXPECT_EQ(*plain, *via_tree);
      EXPECT_EQ(*via_naive, *via_tree);
    }
  }
}

}  // namespace
}  // namespace hetsched
