// Tests for the dual-approximation DP partitioner (ptas/dual_approx.h).
#include "ptas/dual_approx.h"

#include <gtest/gtest.h>

#include "exact/exact_partition.h"
#include "gen/platform_gen.h"
#include "gen/taskset_gen.h"
#include "util/rng.h"

namespace hetsched {
namespace {

TEST(DualApprox, EmptyTasksFeasible) {
  const TaskSet tasks;
  const Platform platform = Platform::from_speeds({1.0});
  EXPECT_EQ(dual_approx_partition(tasks, platform).verdict,
            DualApproxVerdict::kFeasibleRelaxed);
}

TEST(DualApprox, TrivialFeasible) {
  const TaskSet tasks({{1, 2}});
  const Platform platform = Platform::from_speeds({1.0});
  EXPECT_EQ(dual_approx_partition(tasks, platform).verdict,
            DualApproxVerdict::kFeasibleRelaxed);
}

TEST(DualApprox, GrossOverloadInfeasible) {
  // Three unit tasks, two unit machines, even (1+eps) slack cannot help
  // for small eps: every machine would need load >= 1.5.
  const TaskSet tasks({{1, 1}, {1, 1}, {1, 1}});
  const Platform platform = Platform::from_speeds({1.0, 1.0});
  DualApproxOptions opts;
  opts.eps = 0.2;
  EXPECT_EQ(dual_approx_partition(tasks, platform, 1.0, opts).verdict,
            DualApproxVerdict::kInfeasible);
}

TEST(DualApprox, AcceptsWhatFirstFitMisses) {
  // The separating instance from the exact tests: a partition exists but
  // first-fit fails; the DP must accept (possibly with relaxed loads).
  const TaskSet tasks({{44, 100}, {42, 100}, {40, 100},
                       {38, 100}, {20, 100}, {16, 100}});
  const Platform platform = Platform::from_speeds({1.0, 1.0});
  EXPECT_EQ(dual_approx_partition(tasks, platform).verdict,
            DualApproxVerdict::kFeasibleRelaxed);
}

TEST(DualApprox, AlphaScalesCapacity) {
  const TaskSet tasks({{1, 1}, {1, 1}, {1, 1}});
  const Platform platform = Platform::from_speeds({1.0, 1.0});
  DualApproxOptions opts;
  opts.eps = 0.1;
  EXPECT_EQ(dual_approx_partition(tasks, platform, 1.0, opts).verdict,
            DualApproxVerdict::kInfeasible);
  EXPECT_EQ(dual_approx_partition(tasks, platform, 2.0, opts).verdict,
            DualApproxVerdict::kFeasibleRelaxed);
}

TEST(DualApprox, StateLimitReported) {
  Rng rng(5);
  TasksetSpec spec;
  spec.n = 24;
  spec.total_utilization = 5.0;
  const TaskSet tasks = generate_taskset(rng, spec);
  const Platform platform = Platform::identical(6);
  DualApproxOptions opts;
  opts.eps = 0.05;
  opts.max_states = 100;  // absurdly small budget
  EXPECT_EQ(dual_approx_partition(tasks, platform, 1.0, opts).verdict,
            DualApproxVerdict::kStateLimit);
}

TEST(DualApprox, PeakStatesReported) {
  const TaskSet tasks({{1, 2}, {1, 4}});
  const Platform platform = Platform::from_speeds({1.0, 1.0});
  const DualApproxResult res = dual_approx_partition(tasks, platform);
  EXPECT_GE(res.peak_states, 1u);
}

// Dual-approximation contract against the exact search:
//   exact feasible at alpha          => DP never says kInfeasible at alpha
//   DP kFeasibleRelaxed at alpha     => exact feasible at alpha * (1+eps)
class DualApproxPropertyTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DualApproxPropertyTest, DualGuaranteeHolds) {
  Rng rng(GetParam());
  DualApproxOptions opts;
  opts.eps = 0.25;
  for (int iter = 0; iter < 40; ++iter) {
    const Platform platform = geometric_platform(3, rng.uniform(1.0, 2.0));
    TasksetSpec spec;
    spec.n = 8;
    spec.max_task_utilization = platform.max_speed();
    spec.total_utilization =
        std::min(rng.uniform(0.5, 1.05) * platform.total_speed(),
                 0.35 * 8 * spec.max_task_utilization);
    spec.periods = PeriodSpec::uniform(50, 1000);
    const TaskSet tasks = generate_taskset(rng, spec);

    const DualApproxResult dp = dual_approx_partition(tasks, platform, 1.0, opts);
    ASSERT_NE(dp.verdict, DualApproxVerdict::kStateLimit);
    const ExactVerdict exact =
        exact_partition(tasks, platform, AdmissionKind::kEdf, 1.0).verdict;
    ASSERT_NE(exact, ExactVerdict::kNodeLimit);

    if (exact == ExactVerdict::kFeasible) {
      EXPECT_EQ(dp.verdict, DualApproxVerdict::kFeasibleRelaxed)
          << tasks.to_string() << " on " << platform.to_string();
    }
    if (dp.verdict == DualApproxVerdict::kFeasibleRelaxed) {
      EXPECT_EQ(exact_partition(tasks, platform, AdmissionKind::kEdf,
                                1.0 + opts.eps)
                    .verdict,
                ExactVerdict::kFeasible)
          << tasks.to_string() << " on " << platform.to_string();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DualApproxPropertyTest,
                         ::testing::Values(21u, 42u, 63u, 84u, 105u));

}  // namespace
}  // namespace hetsched
