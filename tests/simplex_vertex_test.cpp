// Independent validation of the simplex by brute-force vertex enumeration.
//
// For two-variable LPs every basic feasible solution lies at the
// intersection of two constraint boundaries (including the axes x = 0 and
// y = 0).  Enumerating all pairwise intersections, filtering the feasible
// ones, and taking the best objective value gives a solver-free optimum to
// compare against — on random instances, across all three relation types.
#include <gtest/gtest.h>

#include <cmath>
#include <optional>
#include <vector>

#include "lp/simplex.h"
#include "util/rng.h"

namespace hetsched {
namespace {

struct Line {
  // a x + b y = c
  double a, b, c;
};

std::optional<std::pair<double, double>> intersect(const Line& p,
                                                   const Line& q) {
  const double det = p.a * q.b - q.a * p.b;
  if (std::abs(det) < 1e-9) return std::nullopt;
  return std::make_pair((p.c * q.b - q.c * p.b) / det,
                        (p.a * q.c - q.a * p.c) / det);
}

struct RandomLp {
  LinearProgram lp;
  std::vector<Line> boundaries;              // constraint boundary lines
  std::vector<std::pair<Line, Relation>> rows;
  double cx, cy;

  explicit RandomLp(Rng& rng) : lp(2) {
    cx = rng.uniform(-3, 3);
    cy = rng.uniform(-3, 3);
    lp.set_maximize(true);
    lp.set_objective(0, cx);
    lp.set_objective(1, cy);
    // Bounding box keeps everything bounded; then random extra rows.
    add_row({1, 0, rng.uniform(2, 10)}, Relation::kLe);
    add_row({0, 1, rng.uniform(2, 10)}, Relation::kLe);
    const int extra = static_cast<int>(rng.uniform_int(1, 4));
    for (int k = 0; k < extra; ++k) {
      const Line line{rng.uniform(-2, 2), rng.uniform(-2, 2),
                      rng.uniform(-4, 6)};
      const double pick = rng.next_double();
      add_row(line, pick < 0.45 ? Relation::kLe
                                : (pick < 0.9 ? Relation::kGe : Relation::kEq));
    }
    // Axes are boundaries too (x, y >= 0 are implicit in the solver).
    boundaries.push_back({1, 0, 0});
    boundaries.push_back({0, 1, 0});
  }

  void add_row(const Line& line, Relation rel) {
    lp.add_constraint({{0, line.a}, {1, line.b}}, rel, line.c);
    rows.emplace_back(line, rel);
    boundaries.push_back(line);
  }

  bool feasible_point(double x, double y) const {
    if (x < -1e-7 || y < -1e-7) return false;
    for (const auto& [line, rel] : rows) {
      const double lhs = line.a * x + line.b * y;
      switch (rel) {
        case Relation::kLe:
          if (lhs > line.c + 1e-7) return false;
          break;
        case Relation::kGe:
          if (lhs < line.c - 1e-7) return false;
          break;
        case Relation::kEq:
          if (std::abs(lhs - line.c) > 1e-7) return false;
          break;
      }
    }
    return true;
  }

  // Best objective over all vertices; nullopt if no feasible vertex.
  std::optional<double> brute_force_optimum() const {
    std::optional<double> best;
    for (std::size_t i = 0; i < boundaries.size(); ++i) {
      for (std::size_t j = i + 1; j < boundaries.size(); ++j) {
        const auto pt = intersect(boundaries[i], boundaries[j]);
        if (!pt) continue;
        if (!feasible_point(pt->first, pt->second)) continue;
        const double val = cx * pt->first + cy * pt->second;
        if (!best || val > *best) best = val;
      }
    }
    return best;
  }
};

class SimplexVertexTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SimplexVertexTest, MatchesVertexEnumeration) {
  Rng rng(GetParam());
  int optimal_seen = 0;
  for (int iter = 0; iter < 120; ++iter) {
    const RandomLp instance(rng);
    const LpSolution sol = solve_lp(instance.lp);
    const auto brute = instance.brute_force_optimum();
    if (sol.status == LpStatus::kInfeasible) {
      // Bounded polytopes have a vertex whenever feasible, so the brute
      // force must also find nothing.
      EXPECT_FALSE(brute.has_value());
      continue;
    }
    ASSERT_EQ(sol.status, LpStatus::kOptimal);  // box-bounded: never unbounded
    ++optimal_seen;
    ASSERT_TRUE(brute.has_value());
    EXPECT_NEAR(sol.objective, *brute, 1e-6);
    // The solver's point must itself be feasible.
    EXPECT_TRUE(instance.feasible_point(sol.x[0], sol.x[1]));
  }
  EXPECT_GT(optimal_seen, 30);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimplexVertexTest,
                         ::testing::Values(201u, 202u, 203u, 204u, 205u));

}  // namespace
}  // namespace hetsched
