// Tests for the simulator's constrained-deadline, trace, and sporadic
// arrival extensions (sim/event_sim.h, core/constrained_task.h).
#include <gtest/gtest.h>

#include "core/constrained_task.h"
#include "sim/event_sim.h"

namespace hetsched {
namespace {

TEST(ConstrainedTask, Validity) {
  EXPECT_TRUE((ConstrainedTask{1, 2, 4}).valid());
  EXPECT_TRUE((ConstrainedTask{1, 4, 4}).valid());   // implicit
  EXPECT_FALSE((ConstrainedTask{1, 5, 4}).valid());  // d > p
  EXPECT_FALSE((ConstrainedTask{0, 2, 4}).valid());
  EXPECT_FALSE((ConstrainedTask{1, 0, 4}).valid());
}

TEST(ConstrainedTask, DensityAndUtilization) {
  const ConstrainedTask t{2, 4, 8};
  EXPECT_DOUBLE_EQ(t.utilization(), 0.25);
  EXPECT_DOUBLE_EQ(t.density(), 0.5);
  EXPECT_EQ(t.utilization_exact(), Rational(1, 4));
}

TEST(ConstrainedTask, FromTaskIsImplicit) {
  const ConstrainedTask t = ConstrainedTask::from_task(Task{3, 7});
  EXPECT_EQ(t.deadline, 7);
  EXPECT_EQ(t.period, 7);
}

TEST(ConstrainedSim, TightDeadlineMissesWherePeriodWouldNot) {
  // (3, d, 10): utilization 0.3, but with d = 2 the first job cannot finish.
  const std::vector<ConstrainedTask> ok{{3, 3, 10}};
  const std::vector<ConstrainedTask> bad{{3, 2, 10}};
  EXPECT_TRUE(simulate_uniproc_constrained(ok, Rational(1), SchedPolicy::kEdf)
                  .schedulable);
  const SimOutcome miss =
      simulate_uniproc_constrained(bad, Rational(1), SchedPolicy::kEdf);
  EXPECT_FALSE(miss.schedulable);
  ASSERT_TRUE(miss.miss.has_value());
  EXPECT_EQ(miss.miss->deadline, 2);
}

TEST(ConstrainedSim, EdfHandlesConstrainedInterleaving) {
  // tau1 = (2, 3, 6), tau2 = (2, 6, 6): EDF runs tau1 first (deadline 3),
  // then tau2 finishes at 4 <= 6.  Both repeat; schedulable.
  const std::vector<ConstrainedTask> tasks{{2, 3, 6}, {2, 6, 6}};
  EXPECT_TRUE(
      simulate_uniproc_constrained(tasks, Rational(1), SchedPolicy::kEdf)
          .schedulable);
}

TEST(ConstrainedSim, DeadlineMonotonicPriorityOrder) {
  // Same periods, different deadlines: the tight-deadline task must win
  // under fixed priorities.  tau1 = (3, 9, 10), tau2 = (2, 2, 10).
  // DM runs tau2 first: finishes at 2 == deadline.  RM-by-period would tie
  // and run tau1 first, making tau2 miss.
  const std::vector<ConstrainedTask> tasks{{3, 9, 10}, {2, 2, 10}};
  EXPECT_TRUE(simulate_uniproc_constrained(tasks, Rational(1),
                                           SchedPolicy::kFixedPriorityRm)
                  .schedulable);
}

TEST(ConstrainedSim, ImplicitEmbeddingMatchesTaskOverload) {
  const std::vector<Task> tasks{{1, 2}, {1, 3}, {1, 6}};  // U = 1 exactly
  const SimOutcome via_task =
      simulate_uniproc(tasks, Rational(1), SchedPolicy::kEdf);
  std::vector<ConstrainedTask> ct;
  for (const Task& t : tasks) ct.push_back(ConstrainedTask::from_task(t));
  const SimOutcome via_constrained =
      simulate_uniproc_constrained(ct, Rational(1), SchedPolicy::kEdf);
  EXPECT_EQ(via_task.schedulable, via_constrained.schedulable);
  EXPECT_EQ(via_task.busy_time, via_constrained.busy_time);
  EXPECT_EQ(via_task.jobs_released, via_constrained.jobs_released);
}

TEST(Trace, RecordsSegmentsWhenAsked) {
  const std::vector<Task> tasks{{1, 4}, {6, 12}};
  SimLimits limits;
  limits.record_trace = true;
  const SimOutcome out =
      simulate_uniproc(tasks, Rational(1), SchedPolicy::kEdf, limits);
  ASSERT_TRUE(out.schedulable);
  ASSERT_FALSE(out.trace.empty());
  // Segments tile the busy time exactly.
  Rational covered(0);
  for (const TraceSegment& seg : out.trace) {
    EXPECT_LT(seg.start, seg.end);
    covered += seg.end - seg.start;
  }
  EXPECT_EQ(covered, out.busy_time);
  // Segments are chronologically ordered and non-overlapping.
  for (std::size_t k = 1; k < out.trace.size(); ++k) {
    EXPECT_LE(out.trace[k - 1].end, out.trace[k].start);
  }
}

TEST(Trace, OffByDefault) {
  const std::vector<Task> tasks{{1, 4}};
  const SimOutcome out =
      simulate_uniproc(tasks, Rational(1), SchedPolicy::kEdf);
  EXPECT_TRUE(out.trace.empty());
}

TEST(Trace, RenderContainsSegmentsAndGantt) {
  const std::vector<Task> tasks{{1, 4}, {6, 12}};
  SimLimits limits;
  limits.record_trace = true;
  const SimOutcome out =
      simulate_uniproc(tasks, Rational(1), SchedPolicy::kEdf, limits);
  const std::string text = render_trace(out, tasks.size());
  EXPECT_NE(text.find("task 0:"), std::string::npos);
  EXPECT_NE(text.find("task 1:"), std::string::npos);
  EXPECT_NE(text.find('|'), std::string::npos);  // gantt drawn (horizon 12)
  EXPECT_NE(text.find('0'), std::string::npos);
}

TEST(Trace, GanttSkippedForHugeHorizon) {
  const std::vector<Task> tasks{{1, 499}, {1, 997}};  // hyperperiod 497503
  SimLimits limits;
  limits.record_trace = true;
  const SimOutcome out =
      simulate_uniproc(tasks, Rational(1), SchedPolicy::kEdf, limits);
  const std::string text = render_trace(out, tasks.size());
  EXPECT_EQ(text.find('|'), std::string::npos);
}

TEST(Jitter, SporadicArrivalsAreDeterministicPerSeed) {
  const std::vector<Task> tasks{{2, 5}, {3, 7}};
  SimLimits limits;
  limits.horizon_override = 200;
  const ArrivalModel a = ArrivalModel::jittered(7);
  const SimOutcome o1 =
      simulate_uniproc(tasks, Rational(1), SchedPolicy::kEdf, limits, a);
  const SimOutcome o2 =
      simulate_uniproc(tasks, Rational(1), SchedPolicy::kEdf, limits, a);
  EXPECT_EQ(o1.jobs_released, o2.jobs_released);
  EXPECT_EQ(o1.busy_time, o2.busy_time);
}

TEST(Jitter, SporadicReleasesFewerJobsThanSynchronous) {
  const std::vector<Task> tasks{{1, 5}};
  SimLimits limits;
  limits.horizon_override = 1000;
  const SimOutcome sync =
      simulate_uniproc(tasks, Rational(1), SchedPolicy::kEdf, limits);
  const SimOutcome spor = simulate_uniproc(
      tasks, Rational(1), SchedPolicy::kEdf, limits,
      ArrivalModel::jittered(3, /*max_jitter=*/0.5));
  EXPECT_EQ(sync.jobs_released, 200);
  EXPECT_LT(spor.jobs_released, sync.jobs_released);
  EXPECT_GT(spor.jobs_released, 100);  // jitter caps at 50% extra spacing
}

TEST(Jitter, ZeroJitterEqualsSynchronousExceptPhasing) {
  // max_jitter = 0 draws no slack: identical to the synchronous pattern.
  const std::vector<Task> tasks{{2, 5}, {1, 3}};
  const SimOutcome sync =
      simulate_uniproc(tasks, Rational(1), SchedPolicy::kEdf);
  const SimOutcome zero = simulate_uniproc(
      tasks, Rational(1), SchedPolicy::kEdf, {},
      ArrivalModel::jittered(1, /*max_jitter=*/0.0));
  EXPECT_EQ(sync.jobs_released, zero.jobs_released);
  EXPECT_EQ(sync.busy_time, zero.busy_time);
  EXPECT_EQ(sync.schedulable, zero.schedulable);
}

}  // namespace
}  // namespace hetsched
