// Unit tests for the prior-art certificate wrappers
// (baselines/andersson_tovar.h).
#include "baselines/andersson_tovar.h"

#include <gtest/gtest.h>

#include "lp/feasibility_lp.h"

namespace hetsched {
namespace {

TEST(AnderssonTovar, Constants) {
  EXPECT_DOUBLE_EQ(kAnderssonTovarEdfAlpha, 3.0);
  EXPECT_DOUBLE_EQ(kAnderssonTovarRmsAlpha, 3.41);
}

TEST(AnderssonTovar, EasyInstanceIsFeasibleAugmented) {
  const TaskSet tasks({{1, 4}, {1, 4}});
  const Platform platform = Platform::from_speeds({1.0, 1.0});
  EXPECT_EQ(andersson_tovar_edf(tasks, platform),
            TestVerdict::kFeasibleAugmented);
  EXPECT_EQ(andersson_tovar_rms(tasks, platform),
            TestVerdict::kFeasibleAugmented);
}

TEST(AnderssonTovar, GrossOverloadProvablyInfeasible) {
  // Ten w = 1 tasks on a platform with total speed 2 fail even at alpha=3.41.
  TaskSet tasks;
  for (int i = 0; i < 10; ++i) tasks.push_back({1, 1});
  const Platform platform = Platform::from_speeds({1.0, 1.0});
  EXPECT_EQ(andersson_tovar_edf(tasks, platform),
            TestVerdict::kProvablyInfeasible);
  EXPECT_EQ(andersson_tovar_rms(tasks, platform),
            TestVerdict::kProvablyInfeasible);
  // Sanity: the LP agrees there is no schedule.
  EXPECT_FALSE(lp_feasible_oracle(tasks, platform));
}

TEST(Moseley, VerdictsAtTheNewAlphas) {
  const TaskSet tasks({{1, 4}, {1, 4}});
  const Platform platform = Platform::from_speeds({1.0, 1.0});
  EXPECT_EQ(moseley_edf_vs_lp(tasks, platform),
            TestVerdict::kFeasibleAugmented);
  EXPECT_EQ(moseley_rms_vs_lp(tasks, platform),
            TestVerdict::kFeasibleAugmented);
  EXPECT_EQ(moseley_edf_vs_partitioned(tasks, platform),
            TestVerdict::kFeasibleAugmented);
  EXPECT_EQ(moseley_rms_vs_partitioned(tasks, platform),
            TestVerdict::kFeasibleAugmented);
}

TEST(Moseley, NewCertificatesFireMoreOftenThanOld) {
  // The new tests use smaller alphas, so whenever the new test accepts at
  // alpha = 2.98 the old one must accept at alpha = 3 as well (acceptance
  // monotone for this instance family), and failures at 3 imply failures at
  // 2.98 — i.e. the new certificate is never weaker on these instances.
  TaskSet tasks;
  for (int i = 0; i < 7; ++i) tasks.push_back({1, 1});
  const Platform platform = Platform::from_speeds({1.0, 1.0});
  if (moseley_edf_vs_lp(tasks, platform) == TestVerdict::kFeasibleAugmented) {
    EXPECT_EQ(andersson_tovar_edf(tasks, platform),
              TestVerdict::kFeasibleAugmented);
  }
}

}  // namespace
}  // namespace hetsched
