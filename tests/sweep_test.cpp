// Tests for the partition_sweep batch API (partition/sweep.h): trial RNG
// determinism, independence from pool size, and the documented seeding
// scheme the experiment harnesses rely on.
#include "partition/sweep.h"

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <vector>

#include "gen/platform_gen.h"
#include "gen/taskset_gen.h"
#include "util/thread_pool.h"

namespace hetsched {
namespace {

// One sweep body run: per-trial random instance, accept verdict recorded.
std::vector<int> run_verdicts(std::size_t trials, std::uint64_t seed,
                              ThreadPool* pool) {
  const Platform platform = geometric_platform(4, 1.5);
  std::vector<int> verdicts(trials, -1);
  SweepOptions opts;
  opts.seed = seed;
  opts.pool = pool;
  partition_sweep(trials, opts, [&](SweepContext& ctx) {
    Rng rng = ctx.trial_rng();
    TasksetSpec spec;
    spec.n = 10;
    spec.max_task_utilization = platform.max_speed();
    // Near the acceptance boundary so verdicts vary between seeds.
    spec.total_utilization = 0.95 * platform.total_speed();
    const TaskSet tasks = generate_taskset(rng, spec);
    verdicts[ctx.trial()] =
        ctx.accepts(tasks, platform, AdmissionKind::kEdf, 1.0) ? 1 : 0;
  });
  return verdicts;
}

TEST(PartitionSweep, EveryTrialRunsExactlyOnce) {
  std::atomic<int> runs{0};
  std::vector<std::atomic<int>> per_trial(64);
  SweepOptions opts;
  partition_sweep(64, opts, [&](SweepContext& ctx) {
    runs.fetch_add(1);
    per_trial[ctx.trial()].fetch_add(1);
  });
  EXPECT_EQ(runs.load(), 64);
  for (const auto& c : per_trial) EXPECT_EQ(c.load(), 1);
}

TEST(PartitionSweep, ResultsIndependentOfPoolSize) {
  ThreadPool single(1);
  ThreadPool many(4);
  const std::vector<int> a = run_verdicts(200, 42, &single);
  const std::vector<int> b = run_verdicts(200, 42, &many);
  const std::vector<int> c = run_verdicts(200, 42, nullptr);  // default pool
  EXPECT_EQ(a, b);
  EXPECT_EQ(a, c);
}

TEST(PartitionSweep, SeedChangesResults) {
  ThreadPool single(1);
  const std::vector<int> a = run_verdicts(200, 42, &single);
  const std::vector<int> b = run_verdicts(200, 43, &single);
  EXPECT_NE(a, b);
}

TEST(PartitionSweep, TrialRngMatchesDocumentedScheme) {
  // The context RNG must equal Rng(SplitMix64(seed).next() + trial * stride)
  // — the scheme the pre-sweep experiment harnesses used, which keeps their
  // historical CSVs reproducible.
  const std::uint64_t seed = 0xFEEDFACE;
  SweepOptions opts;
  opts.seed = seed;
  partition_sweep(8, opts, [&](SweepContext& ctx) {
    SplitMix64 mix(seed);
    Rng expected(mix.next() + ctx.trial() * kSweepTrialStride);
    Rng actual = ctx.trial_rng();
    for (int d = 0; d < 16; ++d) {
      ASSERT_EQ(actual.next_u64(), expected.next_u64());
    }
  });
}

TEST(PartitionSweep, ZeroTrialsIsANoOp) {
  int runs = 0;
  SweepOptions opts;
  partition_sweep(0, opts, [&](SweepContext&) { ++runs; });
  EXPECT_EQ(runs, 0);
}

TEST(PartitionSweep, EngineSelectionReachesContext) {
  SweepOptions opts;
  opts.engine = PartitionEngine::kNaive;
  partition_sweep(3, opts, [&](SweepContext& ctx) {
    EXPECT_EQ(ctx.engine(), PartitionEngine::kNaive);
  });
}

}  // namespace
}  // namespace hetsched
