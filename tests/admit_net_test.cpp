// End-to-end coverage of constrained-deadline admission over the wire
// (protocol minor 3) and through the durability plane:
//
//   * framing: the 48-byte deadline payload round-trips, keeps one wire
//     image per request, and every malformed variant decodes kBad;
//   * the headline scenario: a task set the utilization bound rejects but
//     QPA accepts is admitted end-to-end by an `auto` server, rejected by
//     a `bound` server, and answered kBadRequest by a legacy server;
//   * checksum parity: a served constrained trace folds the same decision
//     checksum as the offline tiered controller;
//   * crash safety: fork + SIGKILL mid-stream, recover with the matching
//     admit config, assert the acknowledged prefix bit-exactly against a
//     twin replay (the WAL's per-record tier assertion runs inside), and
//     simulate every recovered machine set miss-free.
#include <gtest/gtest.h>

#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "admit/admission_test.h"
#include "core/constrained_task.h"
#include "core/platform.h"
#include "core/task.h"
#include "gen/churn_gen.h"
#include "io/snapshot_format.h"
#include "io/wal.h"
#include "net/client.h"
#include "net/protocol.h"
#include "net/server.h"
#include "net/shard_store.h"
#include "net/trace_replay.h"
#include "online/online_partitioner.h"
#include "sim/event_sim.h"
#include "util/rng.h"

namespace hetsched::net {
namespace {

using admit::AdmitConfig;
using admit::TestKind;

class TempDir {
 public:
  explicit TempDir(const std::string& tag)
      : path_(tag + "-" + std::to_string(::getpid())) {
    std::filesystem::remove_all(path_);
    EXPECT_TRUE(io::ensure_dir(path_));
  }
  ~TempDir() { std::filesystem::remove_all(path_); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

std::string loopback_addr(const Server& server) {
  return "127.0.0.1:" + std::to_string(server.port());
}

AdmitConfig cfg_of(TestKind k) {
  AdmitConfig cfg;
  cfg.test = k;
  return cfg;
}

// ---------------------------------------------------------------------
// Protocol minor 3 framing
// ---------------------------------------------------------------------

TEST(DeadlineFrame, RoundTripsAndUsesLongPayload) {
  const Request in = Request::admit(3, 99, 4, 10, 9);
  unsigned char buf[kDeadlineFrameSize];
  ASSERT_EQ(encode_request(in, buf), kDeadlineFrameSize);

  Request out;
  std::size_t consumed = 0;
  ASSERT_EQ(decode_request(buf, sizeof buf, &out, &consumed), DecodeResult::kOk);
  EXPECT_EQ(consumed, kDeadlineFrameSize);
  EXPECT_EQ(out.type, MsgType::kAdmit);
  EXPECT_EQ(out.shard, 3);
  EXPECT_EQ(out.request_id, 99u);
  EXPECT_EQ(out.exec(), 4);
  EXPECT_EQ(out.period(), 10);
  EXPECT_EQ(out.deadline_val(), 9);
  EXPECT_EQ(out.trace_id, 0u);  // the trace slot may legitimately be zero

  // Traced + constrained composes: both optional fields ride the 48-byte
  // form and survive the round trip.
  const Request both = Request::admit(0, 7, 2, 8, 5).traced(0xABCD);
  unsigned char buf2[kDeadlineFrameSize];
  ASSERT_EQ(encode_request(both, buf2), kDeadlineFrameSize);
  Request out2;
  ASSERT_EQ(decode_request(buf2, sizeof buf2, &out2, &consumed),
            DecodeResult::kOk);
  EXPECT_EQ(out2.trace_id, 0xABCDu);
  EXPECT_EQ(out2.deadline_val(), 5);
}

TEST(DeadlineFrame, ImplicitAdmitKeepsShortForms) {
  unsigned char buf[kDeadlineFrameSize];
  EXPECT_EQ(encode_request(Request::admit(0, 1, 2, 8), buf), kFrameSize);
  EXPECT_EQ(encode_request(Request::admit(0, 1, 2, 8).traced(5), buf),
            kTracedFrameSize);
  EXPECT_EQ(encode_request(Request::admit(0, 1, 2, 8, 0), buf), kFrameSize);
}

TEST(DeadlineFrame, OneWireImagePerRequest) {
  // decode(encode(r)) re-encodes to the identical bytes — no request has
  // two wire images, so dedup/checksum layers can hash frames directly.
  const Request reqs[] = {
      Request::admit(1, 2, 3, 9),
      Request::admit(1, 2, 3, 9).traced(77),
      Request::admit(1, 2, 3, 9, 6),
      Request::admit(1, 2, 3, 9, 6).traced(77),
  };
  for (const Request& r : reqs) {
    unsigned char a[kDeadlineFrameSize] = {0};
    unsigned char b[kDeadlineFrameSize] = {0};
    const std::size_t na = encode_request(r, a);
    Request mid;
    std::size_t consumed = 0;
    ASSERT_EQ(decode_request(a, na, &mid, &consumed), DecodeResult::kOk);
    ASSERT_EQ(consumed, na);
    ASSERT_EQ(encode_request(mid, b), na);
    EXPECT_EQ(std::memcmp(a, b, na), 0);
  }
}

TEST(DeadlineFrame, MalformedVariantsDecodeBad) {
  unsigned char buf[kDeadlineFrameSize];
  ASSERT_EQ(encode_request(Request::admit(0, 1, 4, 10, 9), buf),
            kDeadlineFrameSize);
  Request out;
  std::size_t consumed = 0;

  // A zero deadline in the 48-byte form is non-canonical (the encoder
  // would have used the short form): kBad.
  unsigned char zero_d[kDeadlineFrameSize];
  std::memcpy(zero_d, buf, sizeof buf);
  std::memset(zero_d + kHeaderSize + 40, 0, 8);
  EXPECT_EQ(decode_request(zero_d, sizeof zero_d, &out, &consumed),
            DecodeResult::kBad);

  // Only kAdmit may use the long form.
  unsigned char wrong_type[kDeadlineFrameSize];
  std::memcpy(wrong_type, buf, sizeof buf);
  wrong_type[kHeaderSize + 1] = static_cast<unsigned char>(MsgType::kDepart);
  EXPECT_EQ(decode_request(wrong_type, sizeof wrong_type, &out, &consumed),
            DecodeResult::kBad);

  // A truncated long frame is kNeedMore at every prefix length.
  for (std::size_t len = 0; len < kDeadlineFrameSize; ++len) {
    EXPECT_EQ(decode_request(buf, len, &out, &consumed), DecodeResult::kNeedMore)
        << "len " << len;
  }
}

// ---------------------------------------------------------------------
// End to end over loopback
// ---------------------------------------------------------------------

// The crafted pair (one unit-speed machine): (5, d=5, p=10) then
// (4, d=9, p=10).  Densities sum to ~1.44 so the bound rejects the second
// task; the approximate DBF overshoots at t=19; exact demand always fits,
// so QPA admits.  `auto` (default band 0.5, margin ~0.44) escalates and
// admits at tier 2.
TEST(AdmitE2E, BoundRejectsWhereAutoAdmitsViaQpa) {
  const Platform pf = Platform::from_speeds({1.0});
  for (const TestKind kind : {TestKind::kBound, TestKind::kAuto}) {
    ServerOptions opts;
    opts.shards = 1;
    opts.admit = cfg_of(kind);
    Server server(pf, opts);
    std::string err;
    ASSERT_TRUE(server.start(&err)) << err;
    Client client;
    ASSERT_TRUE(client.connect(loopback_addr(server), 2000, &err)) << err;

    Response r;
    ASSERT_TRUE(client.call(Request::admit(0, 1, 5, 10, 5), &r, 2000));
    ASSERT_EQ(r.status, Status::kAdmitted) << admit::to_string(kind);

    ASSERT_TRUE(client.call(Request::admit(0, 2, 4, 10, 9), &r, 2000));
    if (kind == TestKind::kBound) {
      EXPECT_EQ(r.status, Status::kRejected);
    } else {
      EXPECT_EQ(r.status, Status::kAdmitted);
      EXPECT_EQ(r.machine, 0u);
    }
    server.request_stop();
    server.wait();
  }
}

TEST(AdmitE2E, LegacyServerAnswersDeadlineFramesBadRequest) {
  const Platform pf = Platform::from_speeds({1.0});
  ServerOptions opts;  // admit defaults to kLegacy
  Server server(pf, opts);
  std::string err;
  ASSERT_TRUE(server.start(&err)) << err;
  Client client;
  ASSERT_TRUE(client.connect(loopback_addr(server), 2000, &err)) << err;

  Response r;
  ASSERT_TRUE(client.call(Request::admit(0, 1, 4, 10, 9), &r, 2000));
  EXPECT_EQ(r.status, Status::kBadRequest);
  // The connection survives, and implicit admits still work.
  ASSERT_TRUE(client.call(Request::admit(0, 2, 4, 10), &r, 2000));
  EXPECT_EQ(r.status, Status::kAdmitted);
  server.request_stop();
  server.wait();
}

TEST(AdmitE2E, ServerValidatesDeadlineRange) {
  const Platform pf = Platform::from_speeds({1.0});
  ServerOptions opts;
  opts.admit = cfg_of(TestKind::kQpa);
  Server server(pf, opts);
  std::string err;
  ASSERT_TRUE(server.start(&err)) << err;
  Client client;
  ASSERT_TRUE(client.connect(loopback_addr(server), 2000, &err)) << err;

  Response r;
  // deadline > period is invalid (constrained model).
  ASSERT_TRUE(client.call(Request::admit(0, 1, 2, 10, 11), &r, 2000));
  EXPECT_EQ(r.status, Status::kBadRequest);
  // d == p is a valid (implicit-equivalent) constrained admit.
  ASSERT_TRUE(client.call(Request::admit(0, 2, 2, 10, 10), &r, 2000));
  EXPECT_EQ(r.status, Status::kAdmitted);
  server.request_stop();
  server.wait();
}

// A served constrained trace folds the same decision checksum as the
// offline tiered controller — the minor-3 path keeps the bit-exactness
// contract the implicit path has.
TEST(AdmitE2E, ConstrainedTraceChecksumMatchesOffline) {
  const Platform pf = Platform::from_speeds({1.0, 1.0});
  const AdmitConfig cfg = cfg_of(TestKind::kAuto);

  Rng rng(0xC0FFEE);
  ChurnSpec spec;
  spec.arrivals = 120;
  spec.constrained_fraction = 0.6;
  const ChurnTrace trace = generate_churn_trace(rng, spec);

  ServerOptions opts;
  opts.shards = 1;
  opts.admit = cfg;
  opts.queue_depth = 256;
  Server server(pf, opts);
  std::string err;
  ASSERT_TRUE(server.start(&err)) << err;
  Client client;
  ASSERT_TRUE(client.connect(loopback_addr(server), 2000, &err)) << err;

  const ReplaySummary sum =
      replay_trace_over_client(client, trace, 0, 16, 5000);
  ASSERT_TRUE(sum.ok) << client.last_error();
  ASSERT_EQ(sum.retried, 0u);
  EXPECT_GT(sum.admitted, 0u);

  EXPECT_EQ(sum.checksum, offline_decision_checksum(
                              pf, trace, AdmissionKind::kEdf, 1.0,
                              PartitionEngine::kAuto, cfg));
  // And a different test kind produces a different decision stream for
  // this trace (the QPA-only acceptances move the fold).
  EXPECT_NE(sum.checksum,
            offline_decision_checksum(pf, trace, AdmissionKind::kEdf, 1.0,
                                      PartitionEngine::kAuto,
                                      cfg_of(TestKind::kBound)));
  server.request_stop();
  server.wait();
}

// ---------------------------------------------------------------------
// Crash recovery
// ---------------------------------------------------------------------

// The headline acceptance scenario end to end: an `auto` server admits a
// stream that includes the bound-rejected/QPA-accepted pair, is SIGKILLed
// mid-churn, and recovery with the matching admit config lands on a
// bit-identical acknowledged prefix (per-record seq/checksum/tier asserts
// run inside recover_shard_set); the recovered machine sets simulate
// miss-free at the machines' speeds.
TEST(AdmitRecovery, KillNineRecoversConstrainedStreamBitExactly) {
  TempDir dir("admit-kill9");
  const Platform pf = Platform::from_speeds({1.0});
  const AdmitConfig cfg = cfg_of(TestKind::kAuto);

  int pipefd[2];
  ASSERT_EQ(::pipe(pipefd), 0);
  const pid_t child = ::fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    ::close(pipefd[0]);
    ServerOptions opts;
    opts.shards = 1;
    opts.admit = cfg;
    opts.wal_dir = dir.path();
    opts.wal_sync = io::WalSync::kBatch;
    opts.snapshot_every = 32;
    Server server(pf, opts);
    std::string err;
    if (!server.start(&err)) ::_exit(2);
    const std::uint16_t port = static_cast<std::uint16_t>(server.port());
    if (::write(pipefd[1], &port, sizeof port) != sizeof port) ::_exit(3);
    ::close(pipefd[1]);
    for (;;) ::pause();
  }
  ::close(pipefd[1]);
  std::uint16_t port = 0;
  ASSERT_EQ(::read(pipefd[0], &port, sizeof port),
            static_cast<ssize_t>(sizeof port));
  ::close(pipefd[0]);

  // The op stream: starts with the crafted tier-2 pair, then mixed
  // implicit/constrained admits and departs of earlier acks.
  struct Op {
    bool is_admit;
    std::int64_t exec, period, deadline;
    std::uint64_t depart_ix;
  };
  std::vector<Op> ops;
  ops.push_back({true, 5, 10, 5, 0});
  ops.push_back({true, 4, 10, 9, 0});
  Rng rng(0xADE14);
  for (int i = 2; i < 300; ++i) {
    if (i >= 10 && rng.next_u64() % 3 == 0) {
      ops.push_back({false, 0, 0, 0,
                     rng.next_u64() % static_cast<std::uint64_t>(i * 3 / 4)});
    } else {
      const std::int64_t period =
          10 + static_cast<std::int64_t>(rng.next_u64() % 90);
      const std::int64_t deadline =
          rng.next_u64() % 4 == 0
              ? 0
              : 2 + static_cast<std::int64_t>(
                        rng.next_u64() %
                        static_cast<std::uint64_t>(period - 1));
      const std::int64_t cap = deadline == 0 ? period / 2 : deadline;
      const std::int64_t exec =
          1 + static_cast<std::int64_t>(
                  rng.next_u64() % static_cast<std::uint64_t>(
                                       std::max<std::int64_t>(1, cap)));
      ops.push_back({true, exec, period, deadline, 0});
    }
  }

  Client client;
  std::string err;
  ASSERT_TRUE(client.connect("127.0.0.1:" + std::to_string(port), 5000, &err))
      << err;
  std::vector<std::uint64_t> admit_ids;
  std::size_t acked = 0;
  bool pair_admitted = false;
  for (const Op& op : ops) {
    Response r;
    const Request req =
        op.is_admit
            ? Request::admit(0, acked, op.exec, op.period, op.deadline)
            : Request::depart(0, acked,
                              admit_ids[op.depart_ix %
                                        std::max<std::size_t>(
                                            1, admit_ids.size())]);
    if (!client.call(req, &r, 5000)) break;  // killed under us — fine
    ++acked;
    if (op.is_admit && r.status == Status::kAdmitted) {
      admit_ids.push_back(r.task_id);
    } else if (op.is_admit) {
      admit_ids.push_back(kInvalidOnlineTaskId);
    }
    if (acked == 2) pair_admitted = r.status == Status::kAdmitted;
    if (acked == 200) ::kill(child, SIGKILL);
  }
  ::kill(child, SIGKILL);
  int wstatus = 0;
  ASSERT_EQ(::waitpid(child, &wstatus, 0), child);
  ASSERT_GE(acked, 200u);
  // The QPA-only admission really happened on the live server.
  EXPECT_TRUE(pair_admitted);

  // Recover with the MATCHING admit config; per-record (seq, checksum,
  // tier) parity is asserted inside recover_shard_set.
  OnlinePartitioner recovered(pf, AdmissionKind::kEdf, 1.0,
                              PartitionEngine::kAuto, cfg);
  OnlinePartitioner* ptr = &recovered;
  const ShardSetRecovery rec = recover_shard_set(
      dir.path(), std::span<OnlinePartitioner* const>(&ptr, 1),
      /*rotate=*/false, io::WalSync::kOff);
  ASSERT_TRUE(rec.ok) << rec.error;

  const std::uint64_t n = recovered.decision_seq();
  ASSERT_GE(n, acked);  // WAL-before-reply: no acknowledged op is lost
  ASSERT_LE(n, ops.size());

  // Twin-replay the first n ops offline and demand bit-exact agreement.
  OnlinePartitioner twin(pf, AdmissionKind::kEdf, 1.0, PartitionEngine::kAuto,
                         cfg);
  std::vector<std::uint64_t> twin_ids;
  std::size_t live_count = 0;
  for (std::uint64_t i = 0; i < n; ++i) {
    const Op& op = ops[i];
    if (op.is_admit) {
      const AdmitDecision d =
          twin.admit(Task{op.exec, op.period, op.deadline});
      twin_ids.push_back(d.admitted ? d.id : kInvalidOnlineTaskId);
    } else {
      const std::uint64_t id =
          twin_ids[op.depart_ix % std::max<std::size_t>(1, twin_ids.size())];
      twin.depart(id);
    }
  }
  live_count = twin.resident_count();
  EXPECT_EQ(recovered.decision_checksum(), twin.decision_checksum());
  EXPECT_EQ(recovered.resident_count(), live_count);

  // The recovered resident sets are genuinely schedulable: simulate each
  // machine's inflated tasks at its speed and demand zero misses.
  for (std::size_t j = 0; j < pf.size(); ++j) {
    std::vector<ConstrainedTask> cts;
    for (const Task& t : recovered.machine_tasks(j)) {
      cts.push_back(admit::inflate(cfg, t));
    }
    if (cts.empty()) continue;
    SimLimits limits;
    limits.max_jobs = 200'000;  // periods are arbitrary: cap, don't prove
    const SimOutcome out = simulate_uniproc_constrained(
        cts, pf.speed_exact(j), SchedPolicy::kEdf, limits);
    EXPECT_TRUE(out.schedulable) << "machine " << j;
  }
}

// Recovery with a DIFFERENT admit config than the WAL was written under
// must fail loudly (verdicts or tiers disagree), not silently diverge.
TEST(AdmitRecovery, ConfigDriftFailsVerification) {
  TempDir dir("admit-drift");
  const Platform pf = Platform::from_speeds({1.0});

  {
    ServerOptions opts;
    opts.shards = 1;
    opts.admit = cfg_of(TestKind::kQpa);
    opts.wal_dir = dir.path();
    opts.wal_sync = io::WalSync::kOff;
    opts.snapshot_every = 0;  // keep every decision in the WAL tail
    Server server(pf, opts);
    std::string err;
    ASSERT_TRUE(server.start(&err)) << err;
    Client client;
    ASSERT_TRUE(client.connect(loopback_addr(server), 2000, &err)) << err;
    Response r;
    // The tier-2 pair: under kQpa the second admit succeeds; a bound-only
    // replay of the same WAL must disagree.
    ASSERT_TRUE(client.call(Request::admit(0, 1, 5, 10, 5), &r, 2000));
    ASSERT_EQ(r.status, Status::kAdmitted);
    ASSERT_TRUE(client.call(Request::admit(0, 2, 4, 10, 9), &r, 2000));
    ASSERT_EQ(r.status, Status::kAdmitted);
    server.request_stop();
    server.wait();
  }

  OnlinePartitioner wrong(pf, AdmissionKind::kEdf, 1.0, PartitionEngine::kAuto,
                          cfg_of(TestKind::kBound));
  OnlinePartitioner* ptr = &wrong;
  const ShardSetRecovery rec = recover_shard_set(
      dir.path(), std::span<OnlinePartitioner* const>(&ptr, 1),
      /*rotate=*/false, io::WalSync::kOff);
  EXPECT_FALSE(rec.ok);
  EXPECT_FALSE(rec.error.empty());

  // The matching config replays the same directory cleanly — and rotates,
  // so from here on the state lives only in the snapshot.
  OnlinePartitioner right(pf, AdmissionKind::kEdf, 1.0, PartitionEngine::kAuto,
                          cfg_of(TestKind::kQpa));
  OnlinePartitioner* rptr = &right;
  const ShardSetRecovery ok = recover_shard_set(
      dir.path(), std::span<OnlinePartitioner* const>(&rptr, 1),
      /*rotate=*/true, io::WalSync::kOff);
  ASSERT_TRUE(ok.ok) << ok.error;
  EXPECT_EQ(right.resident_count(), 2u);

  // Post-rotation drift: the WAL is truncated and the snapshot is the
  // only copy of the state.  A mismatched config must still fail loudly —
  // skipping the snapshot like a corrupt file would "recover" an empty
  // shard with exit success and silently drop both residents.
  OnlinePartitioner drifted(pf, AdmissionKind::kEdf, 1.0,
                            PartitionEngine::kAuto, cfg_of(TestKind::kBound));
  OnlinePartitioner* dptr = &drifted;
  const ShardSetRecovery snap_drift = recover_shard_set(
      dir.path(), std::span<OnlinePartitioner* const>(&dptr, 1),
      /*rotate=*/false, io::WalSync::kOff);
  EXPECT_FALSE(snap_drift.ok);
  EXPECT_NE(snap_drift.error.find("differently configured"), std::string::npos)
      << snap_drift.error;
  EXPECT_EQ(drifted.resident_count(), 0u);

  // And the matching config restores from the rotated snapshot alone.
  OnlinePartitioner again(pf, AdmissionKind::kEdf, 1.0, PartitionEngine::kAuto,
                          cfg_of(TestKind::kQpa));
  OnlinePartitioner* aptr = &again;
  const ShardSetRecovery from_snap = recover_shard_set(
      dir.path(), std::span<OnlinePartitioner* const>(&aptr, 1),
      /*rotate=*/false, io::WalSync::kOff);
  ASSERT_TRUE(from_snap.ok) << from_snap.error;
  EXPECT_EQ(again.resident_count(), 2u);
  EXPECT_EQ(again.decision_checksum(), right.decision_checksum());
}

}  // namespace
}  // namespace hetsched::net
