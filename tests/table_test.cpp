// Unit tests for table / CSV rendering (util/table.h).
#include "util/table.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace hetsched {
namespace {

TEST(Table, RendersAlignedColumns) {
  Table t({"name", "value"});
  t.add_row({"alpha", "2.98"});
  t.add_row({"x", "1"});
  const std::string s = t.render();
  EXPECT_NE(s.find("name   value"), std::string::npos);
  EXPECT_NE(s.find("alpha  2.98"), std::string::npos);
  EXPECT_NE(s.find("-----"), std::string::npos);
}

TEST(Table, RowsCounted) {
  Table t({"a"});
  EXPECT_EQ(t.rows(), 0u);
  t.add_row({"1"});
  t.add_row({"2"});
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, FmtPrecision) {
  EXPECT_EQ(Table::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(Table::fmt(2.0, 3), "2.000");
  EXPECT_EQ(Table::fmt_int(-42), "-42");
}

TEST(Table, CsvBasic) {
  Table t({"a", "b"});
  t.add_row({"1", "2"});
  EXPECT_EQ(t.render_csv(), "a,b\n1,2\n");
}

TEST(Table, CsvEscapesSpecialCells) {
  Table t({"a"});
  t.add_row({"hello, world"});
  t.add_row({"say \"hi\""});
  const std::string csv = t.render_csv();
  EXPECT_NE(csv.find("\"hello, world\""), std::string::npos);
  EXPECT_NE(csv.find("\"say \"\"hi\"\"\""), std::string::npos);
}

TEST(Table, WriteCsvRoundTrip) {
  Table t({"x", "y"});
  t.add_row({"1", "2"});
  const std::string path = ::testing::TempDir() + "/hetsched_table_test.csv";
  ASSERT_TRUE(t.write_csv(path));
  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(buf.str(), t.render_csv());
  std::remove(path.c_str());
}

TEST(Table, WriteCsvFailsOnBadPath) {
  Table t({"x"});
  EXPECT_FALSE(t.write_csv("/nonexistent-dir/zzz/file.csv"));
}

TEST(Table, StreamOperator) {
  Table t({"h"});
  t.add_row({"v"});
  std::ostringstream os;
  os << t;
  EXPECT_EQ(os.str(), t.render());
}

TEST(TableDeathTest, MismatchedRowWidthAborts) {
  Table t({"a", "b"});
  EXPECT_DEATH(t.add_row({"only-one"}), "row width");
}

}  // namespace
}  // namespace hetsched
