// Tests for the job-level migrating-schedule replay
// (migrating/slice_replay.h).
#include "migrating/slice_replay.h"

#include <gtest/gtest.h>

#include "gen/platform_gen.h"
#include "gen/taskset_gen.h"
#include "lp/feasibility_lp.h"
#include "util/rng.h"

namespace hetsched {
namespace {

TEST(Replay, EmptyTaskSetSchedulable) {
  const TaskSet tasks;
  const Platform platform = Platform::from_speeds({1.0});
  const MigratingSchedule sched;
  EXPECT_TRUE(replay_schedule(sched, tasks, platform).schedulable);
}

TEST(Replay, SingleTaskOverHyperperiod) {
  const TaskSet tasks({{1, 4}});
  const Platform platform = Platform::from_speeds({1.0});
  const auto sched = build_migrating_schedule(tasks, platform);
  ASSERT_TRUE(sched.has_value());
  const ReplayOutcome out = replay_schedule(*sched, tasks, platform);
  EXPECT_TRUE(out.schedulable);
  EXPECT_EQ(out.frames_replayed, 4);
  EXPECT_EQ(out.jobs_completed, 1);
}

TEST(Replay, MigrationHeavyInstanceMeetsDeadlines) {
  // Three w = 0.6 tasks on two unit machines: partitioning is impossible,
  // the migrating schedule must still meet every job deadline.
  const TaskSet tasks({{3, 5}, {3, 5}, {3, 5}});
  const Platform platform = Platform::from_speeds({1.0, 1.0});
  const auto sched = build_migrating_schedule(tasks, platform);
  ASSERT_TRUE(sched.has_value());
  const ReplayOutcome out = replay_schedule(*sched, tasks, platform);
  EXPECT_TRUE(out.schedulable);
  EXPECT_EQ(out.frames_replayed, 5);
  EXPECT_EQ(out.jobs_completed, 3);
}

TEST(Replay, StarvedScheduleMisses) {
  // An empty schedule gives the task no work: its first deadline must be
  // reported missed.
  const TaskSet tasks({{1, 3}});
  const Platform platform = Platform::from_speeds({1.0});
  const MigratingSchedule empty;
  const ReplayOutcome out = replay_schedule(empty, tasks, platform);
  EXPECT_FALSE(out.schedulable);
  EXPECT_EQ(out.missed_task, 0u);
  EXPECT_EQ(out.missed_deadline, 3);
}

TEST(Replay, MaxFramesCapsHorizon) {
  const TaskSet tasks({{1, 499}, {1, 997}});  // hyperperiod ~5e5
  const Platform platform = Platform::from_speeds({1.0});
  const auto sched = build_migrating_schedule(tasks, platform);
  ASSERT_TRUE(sched.has_value());
  ReplayOptions opts;
  opts.max_frames = 1000;
  const ReplayOutcome out = replay_schedule(*sched, tasks, platform, opts);
  EXPECT_TRUE(out.schedulable);
  EXPECT_EQ(out.frames_replayed, 1000);
}

class ReplayPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

// End-to-end: LP feasible => BvN schedule => zero job-level misses over the
// hyperperiod.  This is the executable form of "the LP is the migrating
// adversary".
TEST_P(ReplayPropertyTest, LpFeasibleInstancesReplayCleanly) {
  Rng rng(GetParam());
  int replayed = 0;
  for (int iter = 0; iter < 30; ++iter) {
    const Platform platform = uniform_platform(rng, 3, 0.5, 2.0);
    TasksetSpec spec;
    spec.n = 6;
    spec.max_task_utilization = platform.max_speed();
    spec.total_utilization =
        std::min(rng.uniform(0.5, 1.0) * platform.total_speed(),
                 0.35 * 6 * spec.max_task_utilization);
    spec.periods = PeriodSpec::sim_friendly();
    const TaskSet tasks = generate_taskset(rng, spec);
    if (!lp_feasible_oracle(tasks, platform)) continue;
    const auto sched = build_migrating_schedule(tasks, platform);
    ASSERT_TRUE(sched.has_value());
    const ReplayOutcome out = replay_schedule(*sched, tasks, platform);
    EXPECT_TRUE(out.schedulable)
        << tasks.to_string() << " on " << platform.to_string();
    ++replayed;
  }
  EXPECT_GT(replayed, 8);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReplayPropertyTest,
                         ::testing::Values(81u, 82u, 83u, 84u, 85u));

}  // namespace
}  // namespace hetsched
