// Tests for the tiered admission-test subsystem (src/admit): config
// parsing, the overhead model, tier semantics of the escalation chain,
// the acceptance hierarchy (bound => approx => exact), batch-oracle
// equivalence with the online controller, legacy bit-identity on
// implicit-deadline streams, and the tiered snapshot round trip.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "admit/admission_test.h"
#include "core/constrained_task.h"
#include "core/platform.h"
#include "core/task.h"
#include "online/online_partitioner.h"
#include "util/rng.h"

namespace hetsched {
namespace {

using admit::AdmitConfig;
using admit::MachineDemand;
using admit::TestKind;
using admit::TierVerdict;

AdmitConfig cfg_of(TestKind k) {
  AdmitConfig cfg;
  cfg.test = k;
  return cfg;
}

TEST(AdmitConfig, NamesRoundTrip) {
  const TestKind kinds[] = {TestKind::kLegacy, TestKind::kBound,
                            TestKind::kDbfApprox, TestKind::kQpa,
                            TestKind::kRta, TestKind::kAuto};
  for (TestKind k : kinds) {
    const auto back = admit::test_from_name(admit::to_string(k));
    ASSERT_TRUE(back.has_value()) << admit::to_string(k);
    EXPECT_EQ(*back, k);
  }
  EXPECT_FALSE(admit::test_from_name("").has_value());
  EXPECT_FALSE(admit::test_from_name("exact").has_value());
  EXPECT_FALSE(admit::test_from_name("QPA").has_value());
}

TEST(AdmitConfig, TieredAndPriorityPredicates) {
  EXPECT_FALSE(cfg_of(TestKind::kLegacy).tiered());
  EXPECT_TRUE(cfg_of(TestKind::kBound).tiered());
  EXPECT_TRUE(cfg_of(TestKind::kAuto).tiered());
  EXPECT_TRUE(cfg_of(TestKind::kRta).fixed_priority());
  EXPECT_FALSE(cfg_of(TestKind::kQpa).fixed_priority());
}

TEST(AdmitConfig, InflateAppliesOverheadModel) {
  AdmitConfig cfg = cfg_of(TestKind::kQpa);
  cfg.release_overhead = 3;
  cfg.preempt_overhead = 2;
  // Explicit deadline: c' = c + release + 2 * preempt; d and p untouched.
  const ConstrainedTask ct = admit::inflate(cfg, Task{10, 100, 40});
  EXPECT_EQ(ct.exec, 10 + 3 + 2 * 2);
  EXPECT_EQ(ct.deadline, 40);
  EXPECT_EQ(ct.period, 100);
  // Implicit deadline embeds as d == p.
  const ConstrainedTask imp = admit::inflate(cfg, Task{10, 100});
  EXPECT_EQ(imp.deadline, 100);
  // Zero overhead is the identity.
  const ConstrainedTask id = admit::inflate(cfg_of(TestKind::kQpa), Task{7, 9, 8});
  EXPECT_EQ(id.exec, 7);
}

TEST(AdmitConfig, Tier0FoldKind) {
  EXPECT_EQ(admit::tier0_fold_kind(TestKind::kBound), AdmissionKind::kEdf);
  EXPECT_EQ(admit::tier0_fold_kind(TestKind::kQpa), AdmissionKind::kEdf);
  EXPECT_EQ(admit::tier0_fold_kind(TestKind::kAuto), AdmissionKind::kEdf);
  EXPECT_EQ(admit::tier0_fold_kind(TestKind::kRta),
            AdmissionKind::kRmsLiuLayland);
}

// --- tier semantics on crafted instances --------------------------------
//
// All on one unit-speed machine (capacity 1, speed 1/1).  The two fixtures:
//   A: resident (3,4,20), candidate (4,10,20) — density sum 1.15 rejects
//      at tier 0, but the linear approximate DBF accepts with margin
//      (U = 0.35; at t=4 demand 3 < 4, at t=10 demand 7.9 < 10), so the
//      verdict lands at tier 1 for every escalating kind.
//   B: resident (5,5,10), candidate (4,9,10) — density sum ~1.44 rejects,
//      the approximate DBF overshoots at t = 19 (12 + 8 = 20 > 19), but the
//      exact demand never exceeds t, so only QPA-bearing kinds accept, at
//      tier 2.

const Rational kUnit{1};

TierVerdict decide(TestKind k, const std::vector<ConstrainedTask>& residents,
                   const ConstrainedTask& cand, double band = 0.5) {
  AdmitConfig cfg = cfg_of(k);
  cfg.band = band;
  return admit::machine_admits(cfg, residents, cand, 1.0, kUnit);
}

TEST(AdmitTiers, ApproxAcceptLandsAtTierOne) {
  const std::vector<ConstrainedTask> res = {{3, 4, 20}};
  const ConstrainedTask cand{4, 10, 20};
  // tier 0 alone rejects ...
  const TierVerdict bound = decide(TestKind::kBound, res, cand);
  EXPECT_FALSE(bound.accept);
  EXPECT_EQ(bound.tier, admit::kTierBound);
  // ... every escalating kind accepts via the approximate DBF.
  for (TestKind k : {TestKind::kDbfApprox, TestKind::kQpa, TestKind::kAuto}) {
    const TierVerdict v = decide(k, res, cand);
    EXPECT_TRUE(v.accept) << admit::to_string(k);
    EXPECT_EQ(v.tier, admit::kTierApprox) << admit::to_string(k);
  }
}

TEST(AdmitTiers, QpaAcceptsWhatApproxRejects) {
  const std::vector<ConstrainedTask> res = {{5, 5, 10}};
  const ConstrainedTask cand{4, 9, 10};
  EXPECT_FALSE(decide(TestKind::kBound, res, cand).accept);
  const TierVerdict approx = decide(TestKind::kDbfApprox, res, cand);
  EXPECT_FALSE(approx.accept);
  EXPECT_EQ(approx.tier, admit::kTierApprox);
  const TierVerdict qpa = decide(TestKind::kQpa, res, cand);
  EXPECT_TRUE(qpa.accept);
  EXPECT_EQ(qpa.tier, admit::kTierExact);
}

TEST(AdmitTiers, AutoBandGatesTheExactTier) {
  const std::vector<ConstrainedTask> res = {{5, 5, 10}};
  const ConstrainedTask cand{4, 9, 10};
  // Density margin = (1.0 + 4/9 - 1) / 1 ~ 0.444.  Inside the default
  // band the exact tier runs and accepts ...
  const TierVerdict in = decide(TestKind::kAuto, res, cand, 0.5);
  EXPECT_TRUE(in.accept);
  EXPECT_EQ(in.tier, admit::kTierExact);
  // ... outside it the approximate reject stands, and cheaply.
  const TierVerdict out = decide(TestKind::kAuto, res, cand, 0.1);
  EXPECT_FALSE(out.accept);
  EXPECT_EQ(out.tier, admit::kTierApprox);
}

TEST(AdmitTiers, DensitySlackAcceptsAtTierZero) {
  const std::vector<ConstrainedTask> res = {{1, 4, 10}};
  const ConstrainedTask cand{1, 2, 10};  // densities 0.25 + 0.5 <= 1
  for (TestKind k : {TestKind::kBound, TestKind::kDbfApprox, TestKind::kQpa,
                     TestKind::kRta, TestKind::kAuto}) {
    const TierVerdict v = decide(k, res, cand);
    EXPECT_TRUE(v.accept) << admit::to_string(k);
    EXPECT_EQ(v.tier, admit::kTierBound) << admit::to_string(k);
  }
}

TEST(AdmitTiers, RtaDecidesFixedPriorityAtTierTwo) {
  // Densities 0.5 + 0.75 reject the LL-over-densities filter, but DM
  // response times fit: R1 = 2 <= 2, R2 = 2 + 3 = 5 <= 6 (RM order: the
  // d=2 task preempts once within [0, 6]... exactly once since p1 = 8).
  const std::vector<ConstrainedTask> res = {{2, 2, 8}};
  const ConstrainedTask cand{3, 6, 8};
  const TierVerdict v = decide(TestKind::kRta, res, cand);
  EXPECT_TRUE(v.accept);
  EXPECT_EQ(v.tier, admit::kTierExact);
}

TEST(AdmitTiers, EscalateLeavesDemandUnchanged) {
  MachineDemand demand;
  demand.reserve(4);
  demand.push({5, 5, 10});
  const AdmitConfig cfg = cfg_of(TestKind::kQpa);
  const TierVerdict v = admit::escalate(cfg, demand, {4, 9, 10}, kUnit, 0.45);
  EXPECT_TRUE(v.accept);
  ASSERT_EQ(demand.size(), 1u);
  EXPECT_EQ(demand.tasks()[0].exec, 5);
  // Ordered erase keeps later elements in place.
  demand.push({4, 9, 10});
  demand.push({1, 2, 4});
  demand.remove_at(0);
  ASSERT_EQ(demand.size(), 2u);
  EXPECT_EQ(demand.tasks()[0].exec, 4);
  EXPECT_EQ(demand.tasks()[1].exec, 1);
}

// Property: the tiers form a hierarchy.  Over random constrained sets, a
// bound accept implies a dbf-approx accept implies a QPA accept, and auto
// with an infinite band agrees with QPA's verdict exactly.
TEST(AdmitTiers, AcceptanceHierarchyProperty) {
  Rng rng(0xAD317);
  std::size_t bound_accepts = 0, approx_only = 0, exact_only = 0;
  for (int iter = 0; iter < 300; ++iter) {
    std::vector<ConstrainedTask> res;
    const int n = static_cast<int>(rng.uniform_int(0, 4));
    for (int i = 0; i < n; ++i) {
      const std::int64_t p = rng.uniform_int(4, 60);
      const std::int64_t d = rng.uniform_int(1, p);
      const std::int64_t c = rng.uniform_int(1, d);
      res.push_back({c, d, p});
    }
    const std::int64_t p = rng.uniform_int(4, 60);
    const std::int64_t d = rng.uniform_int(1, p);
    const ConstrainedTask cand{rng.uniform_int(1, d), d, p};

    const TierVerdict b = decide(TestKind::kBound, res, cand);
    const TierVerdict a = decide(TestKind::kDbfApprox, res, cand);
    const TierVerdict q = decide(TestKind::kQpa, res, cand);
    const TierVerdict au = decide(TestKind::kAuto, res, cand, 1e9);
    if (b.accept) {
      EXPECT_TRUE(a.accept) << "iter " << iter;
      EXPECT_TRUE(q.accept) << "iter " << iter;
      ++bound_accepts;
    }
    if (a.accept) {
      EXPECT_TRUE(q.accept) << "iter " << iter;
    }
    EXPECT_EQ(au.accept, q.accept) << "iter " << iter;
    if (a.accept && !b.accept) ++approx_only;
    if (q.accept && !a.accept) ++exact_only;
  }
  // The sweep must exercise all three tiers, not degenerate cases.
  EXPECT_GT(bound_accepts, 0u);
  EXPECT_GT(approx_only, 0u);
  EXPECT_GT(exact_only, 0u);
}

// --- controller integration ---------------------------------------------

TEST(AdmitController, MatchesBatchOracleFirstFit) {
  const Platform platform = Platform::from_speeds({1.0, 1.0});
  AdmitConfig cfg = cfg_of(TestKind::kQpa);
  OnlinePartitioner ctl(platform, AdmissionKind::kEdf, 1.0,
                        PartitionEngine::kAuto, cfg);
  ASSERT_TRUE(ctl.tiered());

  std::vector<std::vector<ConstrainedTask>> shadow(platform.size());
  Rng rng(0xF00D);
  std::size_t admitted = 0, rejected = 0;
  for (int iter = 0; iter < 120; ++iter) {
    const std::int64_t p = rng.uniform_int(5, 40);
    const std::int64_t d =
        rng.next_double() < 0.3 ? 0 : rng.uniform_int(2, p);  // mixed stream
    const std::int64_t c = rng.uniform_int(1, d == 0 ? p : d);
    const Task t{c, p, d};

    // Shadow first fit: leftmost machine whose selected test accepts.
    const ConstrainedTask ct = admit::inflate(cfg, t);
    std::size_t want = OnlinePartitioner::kNoMachine;
    TierVerdict want_v;
    for (std::size_t j = 0; j < platform.size(); ++j) {
      const TierVerdict v = admit::machine_admits(
          cfg, shadow[j], ct, platform.speed(j), platform.speed_exact(j));
      if (v.accept) {
        want = j;
        want_v = v;
        break;
      }
    }

    const AdmitDecision got = ctl.admit(t);
    if (want == OnlinePartitioner::kNoMachine) {
      EXPECT_FALSE(got.admitted) << "iter " << iter;
      ++rejected;
    } else {
      ASSERT_TRUE(got.admitted) << "iter " << iter;
      EXPECT_EQ(got.machine, want) << "iter " << iter;
      EXPECT_EQ(got.tier, want_v.tier) << "iter " << iter;
      shadow[want].push_back(ct);
      ++admitted;
    }
  }
  EXPECT_GT(admitted, 0u);
  EXPECT_GT(rejected, 0u);
  EXPECT_EQ(ctl.resident_count(), admitted);
}

// An implicit-deadline stream through the tiered bound-only controller is
// bit-identical to the legacy kEdf controller: same decisions, machines,
// and decision checksum (density == utilization when d == p, and the
// checksum folds the deadline only when nonzero).
TEST(AdmitController, ImplicitStreamBitIdenticalToLegacy) {
  const Platform platform = Platform::from_speeds({1.0, 1.5, 2.0});
  OnlinePartitioner legacy(platform, AdmissionKind::kEdf, 1.0);
  OnlinePartitioner tiered(platform, AdmissionKind::kEdf, 1.0,
                           PartitionEngine::kAuto, cfg_of(TestKind::kBound));

  Rng rng(0xBEEF);
  std::vector<std::pair<OnlineTaskId, OnlineTaskId>> live;
  for (int iter = 0; iter < 200; ++iter) {
    if (!live.empty() && rng.next_double() < 0.3) {
      const std::size_t i =
          static_cast<std::size_t>(rng.uniform_int(
              0, static_cast<std::int64_t>(live.size()) - 1));
      EXPECT_EQ(legacy.depart(live[i].first), tiered.depart(live[i].second));
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(i));
      continue;
    }
    const std::int64_t p = rng.uniform_int(4, 50);
    const Task t{rng.uniform_int(1, p), p};  // implicit deadline
    const AdmitDecision a = legacy.admit(t);
    const AdmitDecision b = tiered.admit(t);
    ASSERT_EQ(a.admitted, b.admitted) << "iter " << iter;
    if (a.admitted) {
      EXPECT_EQ(a.machine, b.machine) << "iter " << iter;
      EXPECT_EQ(a.utilization, b.utilization) << "iter " << iter;
      EXPECT_EQ(b.tier, admit::kTierBound);
      live.emplace_back(a.id, b.id);
    }
    ASSERT_EQ(legacy.decision_checksum(), tiered.decision_checksum())
        << "iter " << iter;
  }
  EXPECT_EQ(legacy.decision_seq(), tiered.decision_seq());
  EXPECT_GT(legacy.resident_count(), 0u);
}

TEST(AdmitController, ConstrainedDecisionsFoldDeadlineIntoChecksum) {
  const Platform platform = Platform::from_speeds({1.0});
  OnlinePartitioner a(platform, AdmissionKind::kEdf, 1.0,
                      PartitionEngine::kAuto, cfg_of(TestKind::kQpa));
  OnlinePartitioner b(platform, AdmissionKind::kEdf, 1.0,
                      PartitionEngine::kAuto, cfg_of(TestKind::kQpa));
  a.admit(Task{1, 10, 5});
  b.admit(Task{1, 10, 6});
  EXPECT_NE(a.decision_checksum(), b.decision_checksum());
}

TEST(AdmitController, TieredSnapshotRoundTrips) {
  const Platform platform = Platform::from_speeds({1.0, 1.0});
  AdmitConfig cfg = cfg_of(TestKind::kAuto);
  cfg.release_overhead = 1;
  OnlinePartitioner ctl(platform, AdmissionKind::kEdf, 1.0,
                        PartitionEngine::kAuto, cfg);
  Rng rng(0x51AB);
  std::vector<OnlineTaskId> ids;
  for (int iter = 0; iter < 60; ++iter) {
    const std::int64_t p = rng.uniform_int(5, 40);
    const std::int64_t d = iter % 3 == 0 ? 0 : rng.uniform_int(3, p);
    const AdmitDecision dec =
        ctl.admit(Task{rng.uniform_int(1, d == 0 ? p : d), p, d});
    if (dec.admitted) ids.push_back(dec.id);
    if (!ids.empty() && iter % 5 == 4) {
      ctl.depart(ids.back());
      ids.pop_back();
    }
  }

  const std::vector<std::uint8_t> bytes = ctl.serialize_snapshot();
  OnlinePartitioner twin(platform, AdmissionKind::kEdf, 1.0,
                         PartitionEngine::kAuto, cfg);
  ASSERT_TRUE(twin.restore_bytes(bytes.data(), bytes.size()));
  EXPECT_EQ(twin.decision_seq(), ctl.decision_seq());
  EXPECT_EQ(twin.decision_checksum(), ctl.decision_checksum());
  EXPECT_EQ(twin.residents(), ctl.residents());

  // The twins stay in lockstep on further constrained traffic.
  for (int iter = 0; iter < 40; ++iter) {
    const std::int64_t p = rng.uniform_int(5, 40);
    const std::int64_t d = rng.uniform_int(3, p);
    const Task t{rng.uniform_int(1, d), p, d};
    const AdmitDecision x = ctl.admit(t);
    const AdmitDecision y = twin.admit(t);
    ASSERT_EQ(x.admitted, y.admitted) << "iter " << iter;
    ASSERT_EQ(x.machine, y.machine) << "iter " << iter;
    ASSERT_EQ(x.tier, y.tier) << "iter " << iter;
    ASSERT_EQ(ctl.decision_checksum(), twin.decision_checksum());
  }

  // A config-mismatched controller must refuse the snapshot.
  OnlinePartitioner other(platform, AdmissionKind::kEdf, 1.0,
                          PartitionEngine::kAuto, cfg_of(TestKind::kQpa));
  EXPECT_FALSE(other.restore_bytes(bytes.data(), bytes.size()));
  OnlinePartitioner untiered(platform, AdmissionKind::kEdf, 1.0);
  EXPECT_FALSE(untiered.restore_bytes(bytes.data(), bytes.size()));
}

TEST(AdmitController, MachineUtilizationReportsDensities) {
  const Platform platform = Platform::from_speeds({1.0});
  OnlinePartitioner ctl(platform, AdmissionKind::kEdf, 1.0,
                        PartitionEngine::kAuto, cfg_of(TestKind::kQpa));
  const AdmitDecision d = ctl.admit(Task{1, 10, 2});  // density 0.5
  ASSERT_TRUE(d.admitted);
  // The machine's fold accumulates the DENSITY (what admission spends);
  // the client-facing decision still reports the task's utilization.
  EXPECT_DOUBLE_EQ(ctl.machine_utilization(0), 0.5);
  EXPECT_DOUBLE_EQ(d.utilization, 0.1);
}

}  // namespace
}  // namespace hetsched
