// Unit tests for single-machine schedulability bounds (core/uniproc.h).
#include "core/uniproc.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace hetsched {
namespace {

TEST(LiuLayland, KnownValues) {
  EXPECT_DOUBLE_EQ(rms_liu_layland_bound(1), 1.0);
  EXPECT_NEAR(rms_liu_layland_bound(2), 2.0 * (std::sqrt(2.0) - 1.0), 1e-12);
  EXPECT_NEAR(rms_liu_layland_bound(3), 3.0 * (std::cbrt(2.0) - 1.0), 1e-12);
}

TEST(LiuLayland, EmptySetAcceptsFullCapacity) {
  EXPECT_DOUBLE_EQ(rms_liu_layland_bound(0), 1.0);
}

TEST(LiuLayland, MonotoneDecreasingToLn2) {
  double prev = rms_liu_layland_bound(1);
  for (std::size_t n = 2; n <= 64; ++n) {
    const double cur = rms_liu_layland_bound(n);
    EXPECT_LT(cur, prev) << "n=" << n;
    EXPECT_GT(cur, rms_utilization_limit()) << "n=" << n;
    prev = cur;
  }
  EXPECT_NEAR(rms_liu_layland_bound(100000), rms_utilization_limit(), 1e-5);
}

TEST(UtilizationLimit, IsLn2) {
  EXPECT_NEAR(rms_utilization_limit(), 0.6931471805599453, 1e-15);
}

TEST(EdfBound, ExactAtBoundary) {
  EXPECT_TRUE(edf_feasible(1.0, 1.0));
  EXPECT_FALSE(edf_feasible(1.0000001, 1.0));
  EXPECT_TRUE(edf_feasible(0.0, 0.5));
}

TEST(EdfBound, ScalesWithSpeed) {
  EXPECT_TRUE(edf_feasible(2.5, 2.5));
  EXPECT_FALSE(edf_feasible(2.5, 2.4));
}

TEST(RmsLlFeasible, UsesTaskCountBound) {
  // 0.8 fits one task (bound 1.0) but not two (bound ~0.828 * 1... wait,
  // 2(sqrt2 - 1) ~= 0.828 > 0.8 so two tasks totalling 0.8 pass too;
  // three tasks (bound ~0.7798) also pass; use 0.83 to separate n=1 from 2.
  EXPECT_TRUE(rms_ll_feasible(0.83, 1, 1.0));
  EXPECT_FALSE(rms_ll_feasible(0.83, 2, 1.0));
}

TEST(RmsLlFeasible, SpeedScaling) {
  EXPECT_TRUE(rms_ll_feasible(1.3, 2, 2.0));
  EXPECT_FALSE(rms_ll_feasible(1.7, 2, 2.0));
}

TEST(RmsHyperbolic, AcceptsWhenProductWithinTwo) {
  // (1.25)(1.25)(1.25) = 1.953 <= 2.
  const std::vector<double> utils{0.25, 0.25, 0.25};
  EXPECT_TRUE(rms_hyperbolic_feasible(utils, 1.0));
}

TEST(RmsHyperbolic, RejectsWhenProductExceedsTwo) {
  // (1.5)(1.5) = 2.25 > 2.
  const std::vector<double> utils{0.5, 0.5};
  EXPECT_FALSE(rms_hyperbolic_feasible(utils, 1.0));
}

TEST(RmsHyperbolic, DominatesLiuLayland) {
  // Any vector accepted by LL must be accepted by the hyperbolic bound
  // (AM-GM: fixed sum maximizes the product when equal, and equal shares at
  // the LL bound give product exactly 2).
  const std::vector<std::vector<double>> cases{
      {0.4, 0.2, 0.1}, {0.25, 0.25, 0.25}, {0.69}, {0.3, 0.3}, {0.5, 0.2}};
  for (const auto& utils : cases) {
    double sum = 0;
    for (const double u : utils) sum += u;
    if (rms_ll_feasible(sum, utils.size(), 1.0)) {
      EXPECT_TRUE(rms_hyperbolic_feasible(utils, 1.0));
    }
  }
}

TEST(RmsHyperbolic, AcceptsBeyondLiuLayland) {
  // Skewed sets the LL bound rejects but the hyperbolic bound accepts:
  // u = {0.6, 0.1, 0.1}: sum 0.8 > LL(3)=0.7798, but product
  // 1.6*1.1*1.1 = 1.936 <= 2.
  const std::vector<double> utils{0.6, 0.1, 0.1};
  EXPECT_FALSE(rms_ll_feasible(0.8, 3, 1.0));
  EXPECT_TRUE(rms_hyperbolic_feasible(utils, 1.0));
}

TEST(RmsHyperbolic, SpeedScaling) {
  const std::vector<double> utils{1.0, 1.0};
  // At speed 2: (1.5)(1.5) = 2.25 > 2 rejected; at speed 3:
  // (4/3)(4/3) = 16/9 <= 2 accepted.
  EXPECT_FALSE(rms_hyperbolic_feasible(utils, 2.0));
  EXPECT_TRUE(rms_hyperbolic_feasible(utils, 3.0));
}

TEST(RmsHyperbolic, EmptySetAccepted) {
  EXPECT_TRUE(rms_hyperbolic_feasible({}, 1.0));
}

}  // namespace
}  // namespace hetsched
