// Tests for the migrating-schedule construction (migrating/bvn_schedule.h).
#include "migrating/bvn_schedule.h"

#include <gtest/gtest.h>

#include "gen/platform_gen.h"
#include "gen/taskset_gen.h"
#include "lp/feasibility_lp.h"
#include "util/rng.h"

namespace hetsched {
namespace {

// Structural validity: no machine runs two tasks, no task runs on two
// machines within a slice (by construction the assignment vector enforces
// the first; this checks the second).
void expect_valid_structure(const MigratingSchedule& sched, std::size_t n) {
  for (const MigratingSlice& s : sched.slices) {
    EXPECT_GT(s.length, 0.0);
    std::vector<int> seen(n, 0);
    for (const std::size_t t : s.assignment) {
      if (t == MigratingSlice::kIdle) continue;
      ASSERT_LT(t, n);
      ++seen[t];
    }
    for (const int count : seen) EXPECT_LE(count, 1);
  }
  EXPECT_LE(sched.total_length(), 1.0 + 1e-6);
}

// Fluid-rate correctness: every task receives exactly w_i per unit frame.
void expect_fluid_rates(const MigratingSchedule& sched, const TaskSet& tasks,
                        const Platform& platform) {
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    EXPECT_NEAR(sched.work_per_frame(i, platform), tasks[i].utilization(),
                1e-5)
        << "task " << i;
  }
}

TEST(Bvn, SingleTaskSingleMachine) {
  const TaskSet tasks({{1, 2}});
  const Platform platform = Platform::from_speeds({1.0});
  const auto sched = build_migrating_schedule(tasks, platform);
  ASSERT_TRUE(sched.has_value());
  expect_valid_structure(*sched, 1);
  expect_fluid_rates(*sched, tasks, platform);
  EXPECT_EQ(sched->migrations_per_frame(), 0u);
}

TEST(Bvn, SplitTaskMigrates) {
  // Three tasks of w = 0.6 on two unit machines: any valid schedule must
  // migrate at least one task (no partition exists).
  const TaskSet tasks({{3, 5}, {3, 5}, {3, 5}});
  const Platform platform = Platform::from_speeds({1.0, 1.0});
  ASSERT_TRUE(lp_feasible_oracle(tasks, platform));
  const auto sched = build_migrating_schedule(tasks, platform);
  ASSERT_TRUE(sched.has_value());
  expect_valid_structure(*sched, tasks.size());
  expect_fluid_rates(*sched, tasks, platform);
  EXPECT_GT(sched->migrations_per_frame(), 0u);
}

TEST(Bvn, InfeasibleLpGivesNullopt) {
  const TaskSet tasks({{3, 2}});  // w = 1.5 on a unit machine
  const Platform platform = Platform::from_speeds({1.0});
  EXPECT_FALSE(build_migrating_schedule(tasks, platform).has_value());
}

TEST(Bvn, DenseTaskUsesFastMachine) {
  const TaskSet tasks({{3, 2}});  // w = 1.5 needs the speed-2 machine
  const Platform platform = Platform::from_speeds({1.0, 2.0});
  const auto sched = build_migrating_schedule(tasks, platform);
  ASSERT_TRUE(sched.has_value());
  expect_fluid_rates(*sched, tasks, platform);
}

TEST(Bvn, RejectsMalformedSolutions) {
  const TaskSet tasks({{1, 2}});
  const Platform platform = Platform::from_speeds({1.0});
  // Wrong size.
  EXPECT_FALSE(
      schedule_from_lp_solution({0.5, 0.5}, tasks, platform).has_value());
  // Negative entry.
  EXPECT_FALSE(schedule_from_lp_solution({-0.5}, tasks, platform).has_value());
  // Machine fraction above 1.
  EXPECT_FALSE(schedule_from_lp_solution({1.5}, tasks, platform).has_value());
}

TEST(Bvn, HandcraftedSplitSolution) {
  // One task w = 0.8 split 50/50 across two unit machines: r rows sum to
  // 0.8; the schedule must deliver 0.8 work with a migration.
  const TaskSet tasks({{4, 5}});
  const Platform platform = Platform::from_speeds({1.0, 1.0});
  const std::vector<double> u{0.4, 0.4};
  const auto sched = schedule_from_lp_solution(u, tasks, platform);
  ASSERT_TRUE(sched.has_value());
  expect_valid_structure(*sched, 1);
  EXPECT_NEAR(sched->work_per_frame(0, platform), 0.8, 1e-9);
}

class BvnPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BvnPropertyTest, RandomFeasibleInstancesDecompose) {
  Rng rng(GetParam());
  int built = 0;
  for (int iter = 0; iter < 40; ++iter) {
    const Platform platform = uniform_platform(rng, 3, 0.5, 2.0);
    TasksetSpec spec;
    spec.n = 8;
    spec.max_task_utilization = platform.max_speed();
    spec.total_utilization =
        std::min(rng.uniform(0.5, 1.0) * platform.total_speed(),
                 0.35 * 8 * spec.max_task_utilization);
    spec.periods = PeriodSpec::uniform(50, 1000);
    const TaskSet tasks = generate_taskset(rng, spec);
    if (!lp_feasible_oracle(tasks, platform)) continue;
    const auto sched = build_migrating_schedule(tasks, platform);
    ASSERT_TRUE(sched.has_value()) << tasks.to_string();
    ++built;
    expect_valid_structure(*sched, tasks.size());
    expect_fluid_rates(*sched, tasks, platform);
    // The BvN theorem caps the slice count at (n+m)^2; ours should be far
    // below even that.
    EXPECT_LE(sched->slices.size(),
              (tasks.size() + platform.size()) * (tasks.size() + platform.size()));
  }
  EXPECT_GT(built, 10);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BvnPropertyTest,
                         ::testing::Values(71u, 72u, 73u, 74u, 75u));

}  // namespace
}  // namespace hetsched
