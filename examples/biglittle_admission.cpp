// Online admission control on a big.LITTLE SoC.
//
// Scenario: a phone SoC with 4 little cores (speed 1) and 4 big cores
// (speed 3) runs a mixed real-time workload.  Apps arrive one at a time,
// each bringing a small task set; the admission controller accepts an app
// only if the *whole* system still passes the partitioned feasibility test.
// Rejected apps are reported with the certificate the test provides: at
// alpha = 2 a rejection means no partitioned scheduler could have fit the
// combined workload (Theorem I.1), so the controller is provably not
// leaving more than a 2x speed margin on the table.
#include <cstdio>
#include <string>
#include <vector>

#include "hetsched/hetsched.h"

namespace {

struct App {
  std::string name;
  std::vector<hetsched::Task> tasks;
};

}  // namespace

int main() {
  using namespace hetsched;

  const Platform soc = big_little_platform(4, 4, 1.0, 3.0);
  std::printf("SoC: %s (total speed %.1f)\n\n", soc.to_string().c_str(),
              soc.total_speed());

  // A plausible phone workload: periods in milliseconds.
  const std::vector<App> arrivals{
      {"audio-pipeline", {{2, 10}, {2, 10}}},               // 2 x w=0.2
      {"display-compositor", {{8, 16}, {4, 16}}},           // w=0.5, 0.25
      {"camera-hdr", {{24, 33}, {20, 33}, {8, 33}}},        // dense: ~1.58
      {"game-engine", {{12, 16}, {28, 16}}},                // w=0.75, 1.75
      {"ml-inference", {{45, 50}, {30, 50}}},               // w=0.9, 0.6
      {"video-encoder", {{52, 33}, {30, 33}}},              // w=1.58, 0.9
      {"background-sync", {{5, 100}, {5, 100}, {5, 100}}},  // 3 x 0.05
      {"navigation", {{40, 50}, {35, 50}}},                 // w=0.8, 0.7
      {"ar-renderer", {{25, 10}, {15, 10}}},                // w=2.5, 1.5
      {"8k-transcode", {{29, 10}}},                         // w=2.9
      {"voice-assistant", {{6, 20}, {4, 20}}},              // w=0.3, 0.2
  };

  TaskSet admitted;
  std::vector<std::string> admitted_names;
  std::printf("%-20s %-9s %-10s %s\n", "app", "verdict", "sys-util",
              "note");
  std::printf("%s\n", std::string(64, '-').c_str());

  for (const App& app : arrivals) {
    TaskSet candidate = admitted;
    for (const Task& t : app.tasks) candidate.push_back(t);

    const PartitionResult res =
        first_fit_partition(candidate, soc, AdmissionKind::kEdf, 1.0);
    if (res.feasible) {
      admitted = candidate;
      admitted_names.push_back(app.name);
      std::printf("%-20s %-9s %-10.2f placed on %zu machines\n",
                  app.name.c_str(), "ADMIT", admitted.total_utilization(),
                  soc.size());
    } else {
      // Distinguish three rejection strengths: over aggregate capacity
      // (impossible for ANY scheduler), failing the Theorem I.1 certificate
      // (impossible for any PARTITIONED scheduler), or plain greedy
      // conservatism within the proven 2x margin.
      const char* note;
      if (!global_necessary_condition(candidate, soc)) {
        note = "exceeds aggregate capacity: impossible for any scheduler";
      } else if (!first_fit_accepts(candidate, soc, AdmissionKind::kEdf,
                                    EdfConstants::kAlphaPartitioned)) {
        note = "no partitioned scheduler could fit this (Thm I.1)";
      } else {
        note = "greedy conservatism (within the 2x margin)";
      }
      std::printf("%-20s %-9s %-10.2f %s\n", app.name.c_str(), "REJECT",
                  candidate.total_utilization(), note);
    }
  }

  // Final placement report with an exact replay.
  const PartitionResult final_res =
      first_fit_partition(admitted, soc, AdmissionKind::kEdf, 1.0);
  std::printf("\nadmitted apps:");
  for (const auto& name : admitted_names) std::printf(" %s", name.c_str());
  std::printf("\nfinal system utilization: %.2f of %.1f total speed\n",
              admitted.total_utilization(), soc.total_speed());
  for (std::size_t j = 0; j < soc.size(); ++j) {
    std::printf("  machine %zu (speed %.1f): load %.2f, %zu tasks\n", j,
                soc.speed(j), final_res.machine_utilization[j],
                final_res.tasks_per_machine[j].size());
  }

  std::vector<Rational> speeds;
  for (std::size_t j = 0; j < soc.size(); ++j) {
    speeds.push_back(soc.speed_exact(j));
  }
  const PartitionSimOutcome sim = simulate_partition(
      final_res.tasks_per_machine, speeds, SchedPolicy::kEdf);
  std::printf("exact replay over hyperperiods: %s\n",
              sim.schedulable ? "all deadlines met" : "DEADLINE MISS");
  return sim.schedulable ? 0 : 1;
}
