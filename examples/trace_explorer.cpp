// Visualizing exact schedules: Gantt traces, jittered arrivals, and the
// EDF-vs-RM difference on the same workload.
//
//   $ ./trace_explorer
//
// Uses a small harmonic workload whose hyperperiod fits in a terminal, so
// the recorded traces render as character Gantt charts: one row per task,
// one column per time unit, '.' = not running.
#include <cstdio>

#include "hetsched/hetsched.h"

namespace {

void show(const char* title, const std::vector<hetsched::Task>& tasks,
          hetsched::SchedPolicy policy, const hetsched::ArrivalModel& model) {
  using namespace hetsched;
  SimLimits limits;
  limits.record_trace = true;
  limits.horizon_override = 24;
  const SimOutcome out =
      simulate_uniproc(tasks, Rational(1), policy, limits, model);
  std::printf("--- %s (%s) ---\n", title, to_string(policy).c_str());
  std::printf("%s", render_trace(out, tasks.size()).c_str());
  std::printf("verdict: %s, %lld jobs, %lld preemptions\n\n",
              out.schedulable ? "all deadlines met" : "DEADLINE MISS",
              static_cast<long long>(out.jobs_released),
              static_cast<long long>(out.preemptions));
}

}  // namespace

int main() {
  using namespace hetsched;

  // w = 1/3 + 1/4 + 1/4 = 0.833: EDF and RM both schedule it, but with
  // visibly different interleavings.
  const std::vector<Task> tasks{{2, 6}, {2, 8}, {3, 12}};

  std::printf("workload: (2,6) (2,8) (3,12) on a unit machine\n\n");
  show("synchronous arrivals", tasks, SchedPolicy::kEdf,
       ArrivalModel::synchronous());
  show("synchronous arrivals", tasks, SchedPolicy::kFixedPriorityRm,
       ArrivalModel::synchronous());
  show("sporadic arrivals (jitter up to 25% of the period, seed 42)", tasks,
       SchedPolicy::kEdf, ArrivalModel::jittered(42));

  // A set where the policies differ in outcome: EDF meets all deadlines at
  // U ~ 0.97, RM misses (see the trace cut short at the miss).
  const std::vector<Task> hard{{2, 5}, {4, 7}};
  std::printf("workload: (2,5) (4,7) — U ~ 0.97\n\n");
  show("synchronous arrivals", hard, SchedPolicy::kEdf,
       ArrivalModel::synchronous());
  show("synchronous arrivals", hard, SchedPolicy::kFixedPriorityRm,
       ArrivalModel::synchronous());
  return 0;
}
