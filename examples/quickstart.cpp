// Quickstart: run the paper's feasibility test on a small task system.
//
//   $ ./quickstart
//
// Walks through the full API surface in ~60 lines: build a task set and a
// heterogeneous platform, run the first-fit test at the certificate alphas,
// interpret the verdicts, and replay the accepted assignment on the exact
// simulator to watch it meet every deadline.
#include <cstdio>

#include "hetsched/hetsched.h"

int main() {
  using namespace hetsched;

  // Three periodic tasks: (execution, period) on a unit-speed machine.
  const TaskSet tasks({
      {2, 10},   // w = 0.2
      {6, 10},   // w = 0.6
      {9, 10},   // w = 0.9
      {12, 10},  // w = 1.2 — denser than a unit machine; needs the big core
  });

  // A small asymmetric platform: two little cores and one big one.
  const Platform platform = Platform::from_speeds({1.0, 1.0, 2.0});

  std::printf("tasks:    %s\n", tasks.to_string().c_str());
  std::printf("platform: %s\n\n", platform.to_string().c_str());

  // 1. The raw test (alpha = 1): accepted means schedulable as-is.
  const PartitionResult raw =
      first_fit_partition(tasks, platform, AdmissionKind::kEdf, 1.0);
  std::printf("first-fit EDF @ alpha=1.00: %s\n", raw.to_string().c_str());

  // 2. The Theorem I.1 certificate (alpha = 2): a failure here proves that
  //    NO partitioned scheduler can run these tasks on this platform.
  const PartitionResult cert = first_fit_partition(
      tasks, platform, AdmissionKind::kEdf, EdfConstants::kAlphaPartitioned);
  std::printf("first-fit EDF @ alpha=2.00: %s\n", cert.to_string().c_str());

  // 3. The LP-adversary certificate (alpha = 2.98, Theorem I.3): a failure
  //    proves that even a migrating scheduler cannot.
  const bool lp_ok = lp_feasible_oracle(tasks, platform);
  std::printf("LP (migrating adversary) feasible: %s\n\n",
              lp_ok ? "yes" : "no");

  if (raw.feasible) {
    std::printf("assignment (task -> machine speed):\n");
    for (std::size_t i = 0; i < tasks.size(); ++i) {
      std::printf("  task %zu (w=%.2f) -> machine with speed %.2f\n", i,
                  tasks[i].utilization(), platform.speed(raw.assignment[i]));
    }

    // Replay the exact schedule over one hyperperiod per machine.
    std::vector<Rational> speeds;
    for (std::size_t j = 0; j < platform.size(); ++j) {
      speeds.push_back(platform.speed_exact(j));
    }
    const PartitionSimOutcome sim =
        simulate_partition(raw.tasks_per_machine, speeds, SchedPolicy::kEdf);
    std::printf("\nexact simulation: %s\n",
                sim.schedulable ? "all deadlines met" : "DEADLINE MISS");
    for (std::size_t j = 0; j < sim.per_machine.size(); ++j) {
      const SimOutcome& out = sim.per_machine[j];
      std::printf("  machine %zu: %lld jobs, %lld preemptions, busy %s/%lld\n",
                  j, static_cast<long long>(out.jobs_released),
                  static_cast<long long>(out.preemptions),
                  out.busy_time.to_string().c_str(),
                  static_cast<long long>(out.horizon));
    }
  }

  // 4. Provisioning question: how much faster would the silicon need to be?
  const auto alpha_star =
      min_feasible_alpha(tasks, platform, AdmissionKind::kEdf, 4.0);
  if (alpha_star) {
    std::printf("\nminimum speed augmentation for acceptance: %.4f\n",
                *alpha_star);
  }
  return 0;
}
