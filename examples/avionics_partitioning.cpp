// Static partitioning with fixed priorities for an avionics-style system.
//
// Scenario: certification requires static task-to-core binding and static
// priorities (rate-monotonic) — the ARINC-653 flavored setting the paper's
// RMS variant models.  The integrator compares three admission policies for
// the same first-fit partitioner:
//   * Liu–Layland (the paper's certifiable test — what the 2.414 / 3.34
//     guarantees apply to),
//   * the hyperbolic bound (tighter, still analytic),
//   * exact response-time analysis (maximum acceptance, no closed-form
//     guarantee).
// The example partitions a flight-control workload under each policy,
// reports who fits where, and replays every accepted partition on the
// exact simulator under rate-monotonic scheduling.
#include <cstdio>
#include <string>
#include <vector>

#include "hetsched/hetsched.h"

int main() {
  using namespace hetsched;

  // Two flight-control processors plus one high-performance mission core.
  const Platform platform = Platform::from_speeds({1.0, 1.0, 2.5});

  // Workload: (name, execution ms, period ms).
  struct NamedTask {
    const char* name;
    Task task;
  };
  const std::vector<NamedTask> workload{
      {"inner-loop-control", {2, 5}},     // w = 0.40
      {"outer-loop-control", {5, 25}},    // w = 0.20
      {"air-data", {3, 20}},              // w = 0.15
      {"actuator-monitor", {2, 10}},      // w = 0.20
      {"nav-filter", {18, 40}},           // w = 0.45
      {"radio-stack", {8, 50}},           // w = 0.16
      {"terrain-warning", {30, 100}},     // w = 0.30
      {"mission-planner", {120, 200}},    // w = 0.60
      {"datalink-crypto", {20, 80}},      // w = 0.25
      {"health-logging", {10, 200}},      // w = 0.05
  };
  TaskSet tasks;
  for (const NamedTask& nt : workload) tasks.push_back(nt.task);
  std::printf("workload: %zu tasks, total utilization %.2f on %s\n\n",
              tasks.size(), tasks.total_utilization(),
              platform.to_string().c_str());

  for (const AdmissionKind kind :
       {AdmissionKind::kRmsLiuLayland, AdmissionKind::kRmsHyperbolic,
        AdmissionKind::kRmsResponseTime}) {
    const PartitionResult res =
        first_fit_partition(tasks, platform, kind, 1.0);
    std::printf("admission %-8s: %s\n", to_string(kind).c_str(),
                res.feasible ? "FEASIBLE" : "INFEASIBLE");
    if (!res.feasible) {
      std::printf("  failed on task '%s' (w=%.2f)\n",
                  workload[*res.failed_task].name, res.failed_utilization);
      continue;
    }
    for (std::size_t j = 0; j < platform.size(); ++j) {
      std::printf("  core %zu (speed %.1f, load %.2f):", j, platform.speed(j),
                  res.machine_utilization[j]);
      for (std::size_t i = 0; i < tasks.size(); ++i) {
        if (res.assignment[i] == j) std::printf(" %s", workload[i].name);
      }
      std::printf("\n");
    }
    std::vector<Rational> speeds;
    for (std::size_t j = 0; j < platform.size(); ++j) {
      speeds.push_back(platform.speed_exact(j));
    }
    const PartitionSimOutcome sim = simulate_partition(
        res.tasks_per_machine, speeds, SchedPolicy::kFixedPriorityRm);
    std::printf("  exact RM replay: %s\n\n",
                sim.schedulable ? "all deadlines met" : "DEADLINE MISS");
  }

  std::printf(
      "reading: exact RTA admits the most, but only the Liu-Layland\n"
      "variant carries the paper's certificate — if IT rejects at\n"
      "alpha = 2.414, no partitioned scheduler of any kind could have\n"
      "placed the workload (Theorem I.2).\n");
  return 0;
}
