// Constrained deadlines: the paper's model, extended (src/dbf).
//
// Scenario: a control system where output jitter matters, so several tasks
// carry deadlines shorter than their periods.  Utilization alone no longer
// decides feasibility — the demand bound function does.  This example
// partitions the same workload at three deadline-tightness levels and shows
// where the exact QPA admission and the linear-approximation admission
// start disagreeing.
#include <cstdio>
#include <vector>

#include "hetsched/hetsched.h"

namespace {

std::vector<hetsched::ConstrainedTask> workload_with_tightness(double frac) {
  using hetsched::ConstrainedTask;
  // (exec, period) pairs; deadline = max(exec, frac * period).
  const std::vector<std::pair<std::int64_t, std::int64_t>> base{
      {2, 10}, {3, 15}, {4, 20}, {5, 40}, {6, 30}, {8, 60}, {2, 12}, {9, 90}};
  std::vector<ConstrainedTask> tasks;
  for (const auto& [c, p] : base) {
    const auto d = std::max<std::int64_t>(
        c, static_cast<std::int64_t>(frac * static_cast<double>(p)));
    tasks.push_back(ConstrainedTask{c, std::min(d, p), p});
  }
  return tasks;
}

}  // namespace

int main() {
  using namespace hetsched;
  const Platform platform = Platform::from_speeds({1.0, 1.0});
  std::printf("platform: %s\n\n", platform.to_string().c_str());

  for (const double frac : {1.0, 0.6, 0.5, 0.42, 0.35}) {
    const auto tasks = workload_with_tightness(frac);
    double util = 0, density = 0;
    for (const ConstrainedTask& t : tasks) {
      util += t.utilization();
      density += t.density();
    }
    std::printf("deadline fraction %.2f: U = %.2f, density = %.2f\n", frac,
                util, density);

    const auto qpa = first_fit_partition_constrained(
        tasks, platform, DbfAdmission::kExactQpa, 1.0);
    const auto approx = first_fit_partition_constrained(
        tasks, platform, DbfAdmission::kApproxLinear, 1.0);
    std::printf("  exact-QPA admission:   %s\n",
                qpa.feasible ? "FEASIBLE" : "infeasible");
    std::printf("  approx-DBF admission:  %s\n",
                approx.feasible ? "FEASIBLE" : "infeasible");

    if (qpa.feasible) {
      // Replay each machine exactly under EDF.
      bool all_met = true;
      for (std::size_t j = 0; j < platform.size(); ++j) {
        const SimOutcome out = simulate_uniproc_constrained(
            qpa.tasks_per_machine[j], platform.speed_exact(j),
            SchedPolicy::kEdf);
        all_met = all_met && out.schedulable;
      }
      std::printf("  exact replay: %s\n",
                  all_met ? "all deadlines met" : "DEADLINE MISS");
    }
    std::printf("\n");
  }

  std::printf(
      "reading: at d = p this is the paper's implicit-deadline model and\n"
      "utilization decides; tightening deadlines raises the demand bound\n"
      "at small t until first the approximate and then the exact test\n"
      "reject — density, not utilization, is what the platform must cover.\n");
  return 0;
}
