// Tour of the curated scenarios: run the whole analysis stack on each named
// workload (gen/scenarios.h) and print a one-screen report per scenario —
// feasibility certificates, per-machine placement, execution-budget slack,
// and what a migrating scheduler could additionally achieve.
#include <cstdio>

#include "gen/scenarios.h"
#include "hetsched/hetsched.h"

namespace {

void report(const hetsched::Scenario& scenario) {
  using namespace hetsched;
  std::printf("==== %s ====\n%s\n", scenario.name.c_str(),
              scenario.description.c_str());
  std::printf("tasks: %zu, total utilization %.2f; platform %s (S = %.2f)\n",
              scenario.tasks.size(), scenario.tasks.total_utilization(),
              scenario.platform.to_string().c_str(),
              scenario.platform.total_speed());

  // Feasibility ladder.
  const bool edf1 =
      first_fit_accepts(scenario.tasks, scenario.platform,
                        AdmissionKind::kEdf, 1.0);
  const bool rms1 = first_fit_accepts(scenario.tasks, scenario.platform,
                                      AdmissionKind::kRmsLiuLayland, 1.0);
  const bool rta1 = first_fit_accepts(scenario.tasks, scenario.platform,
                                      AdmissionKind::kRmsResponseTime, 1.0);
  const bool lp = lp_feasible_oracle(scenario.tasks, scenario.platform);
  std::printf("ff-edf@1: %s | ff-rms-ll@1: %s | ff-rms-rta@1: %s | "
              "lp-migrating: %s\n",
              edf1 ? "yes" : "no", rms1 ? "yes" : "no", rta1 ? "yes" : "no",
              lp ? "yes" : "no");

  if (edf1) {
    const PartitionResult res = first_fit_partition(
        scenario.tasks, scenario.platform, AdmissionKind::kEdf, 1.0);
    for (std::size_t j = 0; j < scenario.platform.size(); ++j) {
      std::printf("  core %zu (x%.2f, load %.2f):", j,
                  scenario.platform.speed(j), res.machine_utilization[j]);
      for (std::size_t i = 0; i < scenario.tasks.size(); ++i) {
        if (res.assignment[i] == j) {
          std::printf(" %s", scenario.task_names[i].c_str());
        }
      }
      std::printf("\n");
    }
    // Per-task WCET growth budget.
    const auto slack = exec_sensitivity(scenario.tasks, scenario.platform,
                                        AdmissionKind::kEdf, 1.0);
    std::printf("  tightest WCET budgets:");
    // Show the three smallest slacks.
    std::vector<TaskSlack> sorted = slack;
    std::sort(sorted.begin(), sorted.end(),
              [](const TaskSlack& a, const TaskSlack& b) {
                return a.max_exec_scale < b.max_exec_scale;
              });
    for (std::size_t k = 0; k < 3 && k < sorted.size(); ++k) {
      std::printf(" %s:x%.2f",
                  scenario.task_names[sorted[k].task_index].c_str(),
                  sorted[k].max_exec_scale);
    }
    std::printf("\n");
  } else {
    const auto alpha = min_feasible_alpha(scenario.tasks, scenario.platform,
                                          AdmissionKind::kEdf, 8.0);
    if (alpha) {
      std::printf("  needs %.3fx faster cores for the greedy test\n", *alpha);
    }
    if (lp) {
      const auto sched =
          build_migrating_schedule(scenario.tasks, scenario.platform);
      if (sched) {
        std::printf("  a migrating scheduler fits it with %zu "
                    "migrations per 0.1 ms frame\n",
                    sched->migrations_per_frame());
      }
    }
  }
  std::printf("\n");
}

}  // namespace

int main() {
  for (const hetsched::Scenario& s : hetsched::all_scenarios()) report(s);
  return 0;
}
