// Capacity planning: how much faster must the silicon be?
//
// Scenario: an avionics integrator has a fixed workload and a candidate
// heterogeneous board.  The feasibility test fails at the shipped speeds.
// Three questions the library answers, in increasing strength:
//   1. alpha*_FF  — the speed multiplier at which the *greedy test* starts
//      accepting (bisection over first-fit);
//   2. alpha*_LP  — the exact multiplier below which *no scheduler at all*
//      (even migrating) can work (closed form from the LP);
//   3. the gap between them — bounded by Theorem I.3: alpha*_FF is never
//      more than 2.98x alpha*_LP (and 2x against partitioned schedulers).
// The example sweeps workload intensity and prints all three, showing where
// provisioning decisions can trust the greedy number.
#include <cstdio>

#include "hetsched/hetsched.h"

int main() {
  using namespace hetsched;

  const Platform board = Platform::from_speeds({0.5, 0.5, 1.0, 1.0, 2.0});
  std::printf("candidate board: %s\n\n", board.to_string().c_str());

  Table table({"load U/S", "ff-edf alpha*", "lp alpha*", "ratio",
               "<= 2.98 (Thm I.3)"});
  Rng rng(2026);
  for (double norm = 0.5; norm <= 1.3001; norm += 0.1) {
    TasksetSpec spec;
    spec.n = 14;
    spec.max_task_utilization = board.max_speed();
    spec.total_utilization = norm * board.total_speed();
    spec.periods = PeriodSpec::automotive();
    const TaskSet workload = generate_taskset(rng, spec);

    const auto ff_alpha =
        min_feasible_alpha(workload, board, AdmissionKind::kEdf, 16.0, 1e-6);
    const double lp_alpha = min_lp_augmentation(workload, board);

    const double ff = ff_alpha.value_or(-1);
    // The effective augmentation of the greedy test relative to the best
    // possible: how much of the board upgrade is greedy overhead.
    const double effective_lp = lp_alpha < 1.0 ? 1.0 : lp_alpha;
    const double ratio = ff > 0 ? ff / effective_lp : -1;
    table.add_row({Table::fmt(norm, 2),
                   ff > 0 ? Table::fmt(ff, 4) : "n/a",
                   Table::fmt(lp_alpha, 4),
                   ratio > 0 ? Table::fmt(ratio, 4) : "n/a",
                   (ratio > 0 && ratio <= 2.98) ? "yes" : "check"});
  }
  std::printf("%s", table.render().c_str());

  std::printf(
      "\nreading: 'ff-edf alpha*' is the multiplier to buy if tasks must be\n"
      "statically partitioned and admitted greedily; 'lp alpha*' is the\n"
      "information-theoretic floor (below it, no scheduler works).  The\n"
      "ratio column is the provisioning premium of the simple test, and\n"
      "Theorem I.3 caps it at 2.98 (2.0 against partitioned schedulers).\n");
  return 0;
}
